//! A per-function control-flow approximation built from the token tree
//! ([`crate::parser`]): enough edges to reason about *what must happen on
//! every path out of a function* — which is exactly the shape of the
//! panic-safe latch invariant ([`crate::latch`]).
//!
//! The graph is deliberately an approximation, biased to **over**-estimate
//! the set of paths (extra paths can only make the latch pass stricter,
//! never blind):
//!
//! * statements chain sequentially; `if`/`else` and `match` arms branch
//!   and re-join;
//! * `loop`/`while`/`for` get a head node, a back edge, and a
//!   [`EdgeKind::LoopExit`] edge that models the zero-iteration case;
//! * `?` produces a [`NodeKind::Question`] node with an exit edge taken
//!   *before* the adjacent call's effect applies — so `lock()?` fails
//!   without holding, and `unlock()?` fails while still holding;
//! * `return`/`break`/`continue` divert the frontier (`break` targets the
//!   innermost loop; labeled breaks are approximated the same way);
//! * `unwrap`/`expect` calls and `panic!`-family macros (plus `[...]`
//!   indexing in expression position) get panic edges to the exit;
//! * closure bodies are lowered **inline**, as if executed at the point
//!   of definition — an over-approximation that treats a deferred
//!   closure's operations as happening under whatever is held at its
//!   creation site.
//!
//! What it deliberately does not model: inter-procedural effects (a
//! callee's acquisitions are its own problem), value-dependent branches,
//! drop order, and unwinding through callees that are not syntactically
//! panic-capable. See DESIGN.md, "Dataflow lint".

use crate::lexer::TokKind;
use crate::parser::{Group, Tree};

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    Entry,
    Exit,
    /// Structural merge point (branch join, loop head, loop after).
    Join,
    /// A call `name(...)` / `recv.name(...)`.
    Call {
        name: String,
        recv: Option<String>,
    },
    /// The `?` operator.
    Question,
    /// A `panic!`-family macro, an `assert!`-family macro, or an indexing
    /// expression; `what` names the source for diagnostics.
    Panic {
        what: String,
    },
    /// An explicit `return`.
    Return,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    Seq,
    /// Loop body end back to the loop head.
    Back,
    /// Loop head to the code after the loop (the zero-iteration path).
    LoopExit,
    /// `?` early exit.
    Question,
    /// Panic propagation to the exit.
    Panic,
    /// Explicit `return` to the exit.
    Return,
}

#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub to: usize,
    pub kind: EdgeKind,
}

#[derive(Debug)]
pub struct Node {
    pub kind: NodeKind,
    pub line: u32,
}

/// One lowered loop: the head/after nodes and the half-open node-index
/// range of its body (every node created while lowering the body).
#[derive(Debug, Clone, Copy)]
pub struct LoopInfo {
    pub head: usize,
    pub after: usize,
    pub body: (usize, usize),
}

#[derive(Debug)]
pub struct Cfg {
    pub nodes: Vec<Node>,
    pub succ: Vec<Vec<Edge>>,
    pub entry: usize,
    pub exit: usize,
    pub loops: Vec<LoopInfo>,
}

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Macros that always diverge.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Macros that may panic but fall through on success. `debug_assert*` is
/// deliberately absent: it is compiled out of release builds, and the
/// engine treats it as documentation, not a panic edge.
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// Build the CFG for one function body.
pub fn build(body: &Group) -> Cfg {
    let mut b = Builder {
        nodes: vec![
            Node {
                kind: NodeKind::Entry,
                line: body.open_line,
            },
            Node {
                kind: NodeKind::Exit,
                line: body.close_line,
            },
        ],
        succ: vec![Vec::new(), Vec::new()],
        loops: Vec::new(),
        loop_stack: Vec::new(),
        depth: 0,
    };
    let end = b.seq(&body.children, Some(ENTRY));
    if let Some(end) = end {
        b.edge(end, EXIT, EdgeKind::Seq);
    }
    Cfg {
        nodes: b.nodes,
        succ: b.succ,
        entry: ENTRY,
        exit: EXIT,
        loops: b.loops,
    }
}

const ENTRY: usize = 0;
const EXIT: usize = 1;
/// Nesting-depth cap: beyond this the builder stops descending into
/// groups (degenerate fuzzed input; real code never gets close).
const MAX_DEPTH: u32 = 96;

struct Builder {
    nodes: Vec<Node>,
    succ: Vec<Vec<Edge>>,
    loops: Vec<LoopInfo>,
    /// (head, after) of each enclosing loop, innermost last.
    loop_stack: Vec<(usize, usize)>,
    depth: u32,
}

impl Builder {
    fn node(&mut self, kind: NodeKind, line: u32) -> usize {
        self.nodes.push(Node { kind, line });
        self.succ.push(Vec::new());
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        self.succ[from].push(Edge { to, kind });
    }

    /// Chain a fresh node onto the current frontier.
    fn chain(&mut self, cur: Option<usize>, kind: NodeKind, line: u32) -> usize {
        let n = self.node(kind, line);
        if let Some(c) = cur {
            self.edge(c, n, EdgeKind::Seq);
        }
        n
    }

    /// Merge branch frontiers into one join node (or pass a single one
    /// through; `None` means every branch diverged).
    fn join(&mut self, ends: &[Option<usize>], line: u32) -> Option<usize> {
        let live: Vec<usize> = ends.iter().copied().flatten().collect();
        match live.as_slice() {
            [] => None,
            [one] => Some(*one),
            many => {
                let j = self.node(NodeKind::Join, line);
                for &e in many {
                    self.edge(e, j, EdgeKind::Seq);
                }
                Some(j)
            }
        }
    }

    /// Lower a sequence of sibling trees, returning the frontier (None if
    /// the sequence diverges). `cur == None` still lowers the remaining
    /// items — their nodes are simply unreachable, which the passes
    /// ignore by construction (they traverse from reachable acquires).
    fn seq(&mut self, items: &[Tree], mut cur: Option<usize>) -> Option<usize> {
        if self.depth >= MAX_DEPTH {
            return cur;
        }
        self.depth += 1;
        let mut i = 0usize;
        while i < items.len() {
            match &items[i] {
                // Attributes: skip `#[...]` (and `#![...]`) entirely.
                Tree::Leaf(t) if t.kind == TokKind::Punct && t.text == "#" => {
                    let mut j = i + 1;
                    if items.get(j).is_some_and(|x| x.is_leaf("!")) {
                        j += 1;
                    }
                    if items
                        .get(j)
                        .and_then(Tree::group)
                        .is_some_and(|g| g.delim == '[')
                    {
                        i = j + 1;
                        continue;
                    }
                    i += 1;
                }
                Tree::Leaf(t) if t.kind == TokKind::Ident => match t.text.as_str() {
                    "if" => {
                        let (ni, end) = self.if_chain(items, i, cur);
                        cur = end;
                        i = ni;
                    }
                    "match" => {
                        let (ni, end) = self.match_stmt(items, i, cur);
                        cur = end;
                        i = ni;
                    }
                    "loop" | "while" | "for" => {
                        let (ni, end) = self.loop_stmt(items, i, cur);
                        cur = end;
                        i = ni;
                    }
                    "return" => {
                        let stop = stmt_end(items, i + 1);
                        cur = self.seq(&items[i + 1..stop], cur);
                        let r = self.chain(cur, NodeKind::Return, t.line);
                        self.edge(r, EXIT, EdgeKind::Return);
                        cur = None;
                        i = stop;
                    }
                    "break" => {
                        let stop = stmt_end(items, i + 1);
                        cur = self.seq(&items[i + 1..stop], cur);
                        let target = self
                            .loop_stack
                            .last()
                            .map(|&(_, after)| after)
                            .unwrap_or(EXIT);
                        if let Some(c) = cur {
                            self.edge(c, target, EdgeKind::Seq);
                        }
                        cur = None;
                        i = stop;
                    }
                    "continue" => {
                        if let (Some(c), Some(&(head, _))) = (cur, self.loop_stack.last()) {
                            self.edge(c, head, EdgeKind::Back);
                        }
                        cur = None;
                        i = stmt_end(items, i + 1);
                    }
                    // A bare `else { … }` with no `if` in front is the
                    // `let … else` divergence block: lower it as a branch
                    // off the current frontier.
                    "else" => {
                        if let Some(g) = items.get(i + 1).and_then(Tree::group) {
                            let end = self.seq(&g.children, cur);
                            cur = self.join(&[cur, end], g.close_line);
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    name => {
                        // Macro invocation?
                        if items.get(i + 1).is_some_and(|x| x.is_leaf("!")) {
                            if let Some(g) = items.get(i + 2).and_then(Tree::group) {
                                cur = self.seq(&g.children, cur);
                                if PANIC_MACROS.contains(&name) {
                                    let p = self.chain(
                                        cur,
                                        NodeKind::Panic {
                                            what: format!("{name}!"),
                                        },
                                        t.line,
                                    );
                                    self.edge(p, EXIT, EdgeKind::Panic);
                                    cur = None;
                                } else if ASSERT_MACROS.contains(&name) {
                                    let p = self.chain(
                                        cur,
                                        NodeKind::Panic {
                                            what: format!("{name}!"),
                                        },
                                        t.line,
                                    );
                                    self.edge(p, EXIT, EdgeKind::Panic);
                                    cur = Some(p);
                                }
                                i += 3;
                                continue;
                            }
                        }
                        // Plain or turbofish call?
                        if let Some((args, after)) = call_args(items, i) {
                            cur = self.seq(&args.children, cur);
                            // `call(…)?` — the `?` branches before the
                            // call's effect.
                            let mut skip_q = false;
                            if items.get(after).is_some_and(|x| x.is_leaf("?")) {
                                let q = self.chain(cur, NodeKind::Question, t.line);
                                self.edge(q, EXIT, EdgeKind::Question);
                                cur = Some(q);
                                skip_q = true;
                            }
                            let call = self.chain(
                                cur,
                                NodeKind::Call {
                                    name: name.to_string(),
                                    recv: recv_of(items, i),
                                },
                                t.line,
                            );
                            if PANIC_METHODS.contains(&name) {
                                self.edge(call, EXIT, EdgeKind::Panic);
                            }
                            cur = Some(call);
                            i = after + usize::from(skip_q);
                            continue;
                        }
                        i += 1;
                    }
                },
                Tree::Leaf(t) if t.kind == TokKind::Punct && t.text == "?" => {
                    let q = self.chain(cur, NodeKind::Question, t.line);
                    self.edge(q, EXIT, EdgeKind::Question);
                    cur = Some(q);
                    i += 1;
                }
                Tree::Group(g) if g.delim == '[' => {
                    cur = self.seq(&g.children, cur);
                    if is_index_position(items, i) {
                        let p = self.chain(
                            cur,
                            NodeKind::Panic {
                                what: "index".to_string(),
                            },
                            g.open_line,
                        );
                        self.edge(p, EXIT, EdgeKind::Panic);
                        cur = Some(p);
                    }
                    i += 1;
                }
                Tree::Group(g) => {
                    // Blocks, argument lists without a named callee,
                    // struct literals: lower inline.
                    cur = self.seq(&g.children, cur);
                    i += 1;
                }
                Tree::Leaf(_) => i += 1,
            }
        }
        self.depth -= 1;
        cur
    }

    /// Lower `if cond { } (else if cond { })* (else { })?` starting at the
    /// `if` leaf. Returns (next index, frontier).
    fn if_chain(&mut self, items: &[Tree], i: usize, cur: Option<usize>) -> (usize, Option<usize>) {
        let line = items[i].line();
        let Some(then_idx) = brace_group_after(items, i + 1) else {
            return (i + 1, cur);
        };
        let branch = self.seq(&items[i + 1..then_idx], cur);
        let then_group = items[then_idx].group().expect("brace group");
        let then_end = self.seq(&then_group.children, branch);
        let mut ends = vec![then_end];
        let mut next = then_idx + 1;
        if items.get(next).is_some_and(|x| x.is_leaf("else")) {
            match items.get(next + 1) {
                Some(Tree::Leaf(t)) if t.text == "if" => {
                    let (ni, else_end) = self.if_chain(items, next + 1, branch);
                    ends.push(else_end);
                    next = ni;
                }
                Some(Tree::Group(g)) if g.delim == '{' => {
                    ends.push(self.seq(&g.children, branch));
                    next += 2;
                }
                _ => {
                    // `if` without a then-path taken (no else): falling
                    // past the condition is a live path.
                    ends.push(branch);
                    next += 1;
                }
            }
        } else {
            // No else: the condition may be false.
            ends.push(branch);
        }
        (next, self.join(&ends, line))
    }

    /// Lower `match scrutinee { pat => body, … }`.
    fn match_stmt(
        &mut self,
        items: &[Tree],
        i: usize,
        cur: Option<usize>,
    ) -> (usize, Option<usize>) {
        let line = items[i].line();
        let Some(gi) = brace_group_after(items, i + 1) else {
            return (i + 1, cur);
        };
        let scrut = self.seq(&items[i + 1..gi], cur);
        let arms_group = items[gi].group().expect("brace group");
        let arms = split_arms(&arms_group.children);
        if arms.is_empty() {
            return (gi + 1, scrut);
        }
        let mut ends = Vec::new();
        for arm in arms {
            ends.push(self.seq(arm, scrut));
        }
        (gi + 1, self.join(&ends, line))
    }

    /// Lower `loop { }`, `while cond { }`, `for pat in iter { }`.
    fn loop_stmt(
        &mut self,
        items: &[Tree],
        i: usize,
        cur: Option<usize>,
    ) -> (usize, Option<usize>) {
        let line = items[i].line();
        let Some(gi) = brace_group_after(items, i + 1) else {
            return (i + 1, cur);
        };
        // Header events (condition / iterator expression) run on entry.
        let header_end = self.seq(&items[i + 1..gi], cur);
        let head = self.node(NodeKind::Join, line);
        if let Some(h) = header_end {
            self.edge(h, head, EdgeKind::Seq);
        }
        let after = self.node(NodeKind::Join, line);
        self.edge(head, after, EdgeKind::LoopExit);
        self.loop_stack.push((head, after));
        let body_start = self.nodes.len();
        let body_group = items[gi].group().expect("brace group");
        let body_end = self.seq(&body_group.children, Some(head));
        if let Some(e) = body_end {
            self.edge(e, head, EdgeKind::Back);
        }
        let body = (body_start, self.nodes.len());
        self.loop_stack.pop();
        self.loops.push(LoopInfo { head, after, body });
        (gi + 1, Some(after))
    }
}

/// Index of the statement terminator `;` at this nesting level (or the
/// slice end), starting the search at `from`.
fn stmt_end(items: &[Tree], from: usize) -> usize {
    let mut j = from;
    while j < items.len() {
        if items[j].is_leaf(";") {
            return j;
        }
        j += 1;
    }
    j
}

/// Find the first `{` group at this level starting at `from` (the body of
/// an `if`/`match`/loop header). Stops at `;` — a header never crosses a
/// statement boundary.
fn brace_group_after(items: &[Tree], from: usize) -> Option<usize> {
    let mut j = from;
    while j < items.len() {
        match &items[j] {
            Tree::Group(g) if g.delim == '{' => return Some(j),
            Tree::Leaf(t) if t.text == ";" => return None,
            _ => j += 1,
        }
    }
    None
}

/// Split a match-arm group body into arms: each arm is the tree slice
/// after `=>` up to the arm-terminating `,` (or a `{}` body). Pattern and
/// guard tokens ride along in front of the `=>` — they are lowered with
/// the arm, which over-approximates (guard events happen on every arm's
/// path) but never misses an event.
fn split_arms(items: &[Tree]) -> Vec<&[Tree]> {
    let mut arms = Vec::new();
    let mut start = 0usize;
    let mut j = 0usize;
    while j < items.len() {
        let arm_ends = match &items[j] {
            // A `,` ends the arm only after its `=>` appeared.
            Tree::Leaf(t) if t.text == "," => is_fat_arrow(items, start, j),
            Tree::Group(g)
                if g.delim == '{'
                    && j >= 2
                    && items[j - 1].is_leaf(">")
                    && items[j - 2].is_leaf("=") =>
            {
                // `pat => { … }` — the block ends the arm (an optional
                // trailing `,` is consumed below).
                true
            }
            _ => false,
        };
        if arm_ends {
            let mut end = j + 1;
            if items.get(end).is_some_and(|x| x.is_leaf(",")) {
                end += 1;
            }
            arms.push(&items[start..end]);
            start = end;
            j = end;
        } else {
            j += 1;
        }
    }
    if start < items.len() {
        arms.push(&items[start..]);
    }
    arms
}

fn is_fat_arrow(items: &[Tree], start: usize, upto: usize) -> bool {
    (start + 1..upto).any(|k| items[k - 1].is_leaf("=") && items[k].is_leaf(">"))
}

/// If `items[i]` is the callee ident of a call (`name(…)`, optionally
/// with a turbofish `name::<T>(…)`), return the argument group and the
/// index just past it.
fn call_args(items: &[Tree], i: usize) -> Option<(&Group, usize)> {
    // Direct `name(...)`.
    if let Some(g) = items.get(i + 1).and_then(Tree::group) {
        if g.delim == '(' {
            // `fn name(` is a definition, not a call.
            if items
                .get(i.wrapping_sub(1))
                .is_some_and(|x| x.is_leaf("fn"))
            {
                return None;
            }
            return Some((g, i + 2));
        }
        return None;
    }
    // Turbofish `name::<...>(...)`.
    if items.get(i + 1).is_some_and(|x| x.is_leaf("::"))
        && items.get(i + 2).is_some_and(|x| x.is_leaf("<"))
    {
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < items.len() {
            match &items[j] {
                Tree::Leaf(t) if t.text == "<" => depth += 1,
                Tree::Leaf(t) if t.text == ">" => {
                    depth -= 1;
                    if depth == 0 {
                        if let Some(g) = items.get(j + 1).and_then(Tree::group) {
                            if g.delim == '(' {
                                return Some((g, j + 2));
                            }
                        }
                        return None;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    None
}

/// Receiver ident of a method call at `items[i]`: walks `recv.name` and
/// `recv[idx].name` / `recv(…).name` shapes, mirroring the lexical
/// matcher in [`crate::locks`].
fn recv_of(items: &[Tree], i: usize) -> Option<String> {
    if i < 2 || !items[i - 1].is_leaf(".") {
        return None;
    }
    let mut j = i - 2;
    // Skip one trailing index/call group to the receiver ident.
    if items[j].group().is_some() {
        j = j.checked_sub(1)?;
    }
    match &items[j] {
        Tree::Leaf(t) if t.kind == TokKind::Ident => Some(t.text.clone()),
        _ => None,
    }
}

/// Is the `[` group at `items[i]` an indexing expression (panics on
/// out-of-range) rather than an array literal, attribute, or pattern?
fn is_index_position(items: &[Tree], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|j| &items[j]) else {
        return false;
    };
    match prev {
        Tree::Leaf(t) => t.kind == TokKind::Ident && t.text != "mut",
        // `foo(…)[0]` / `foo[0][1]`.
        Tree::Group(g) => g.delim != '{',
    }
}
