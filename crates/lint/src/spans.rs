//! Check 9 (dataflow): span-token linearity. The tracer's manual span
//! API (`obs::span_begin` → `obs::span_switch`* → `obs::span_end`) hands
//! out linear tokens: a token that reaches a function exit unconsumed is
//! a *leaked span* — the stage it was timing never records, its journal
//! event never appears, and (for sampled chains) the per-stage histogram
//! counts silently drift apart. Dropping a `SpanToken` is deliberately
//! silent at runtime (a tracer must never panic the engine), so the
//! discipline lives here instead.
//!
//! The `[spans]` table in `LOCKS.toml` names the `begin` patterns
//! (`span_begin`, `span_begin_sampled`, and `span_switch`, which closes
//! one stage *and* opens the next), the `end` patterns (`span_end`,
//! `span_switch`, plus any wrapper that consumes a token, e.g. the
//! commit pipeline's `record_commit_total`), and the instrumented files.
//! Every begin must reach an end on **all** CFG paths out of the
//! function: the normal path, every early `return`, every `?`, and every
//! panic edge. The machinery mirrors the latch pass ([`crate::latch`]):
//! a node matching both lists terminates the search from an earlier
//! begin and starts its own, which is exactly a chained `span_switch`.
//!
//! Escape hatches, identical in spirit to the latch pass: a
//! `// PANIC-OK:` comment run within `WINDOW` lines above a panic site
//! suppresses the panic-edge finding there (fail-stop sites die with the
//! span open; the journal is diagnostic-only), and test code is exempt
//! (`#[cfg(test)]` regions and `tests/` files). The RAII `obs::span!`
//! guard is invisible to this pass — it closes on drop by construction.

use crate::cfg::{self, Cfg, EdgeKind, NodeKind};
use crate::config::{Config, Pattern, SpanConfig};
use crate::lexer::{comment_runs, in_regions, Lexed};
use crate::parser::{functions, Tree};
use crate::Finding;

const WINDOW: u32 = 10;

pub fn check(rel_path: &str, lx: &Lexed, trees: &[Tree], cfg: &Config) -> Vec<Finding> {
    let spans = &cfg.spans;
    if !spans.files.iter().any(|f| f == rel_path) || rel_path.contains("/tests/") {
        return Vec::new();
    }
    let test_regions = crate::lexer::test_regions(lx);
    let panic_ok = comment_runs(lx, &["PANIC-OK"]);
    let mut findings = Vec::new();
    for f in functions(trees) {
        if in_regions(&test_regions, f.line) {
            continue;
        }
        let g = cfg::build(f.body);
        analyze(rel_path, &f.name, &g, spans, &panic_ok, &mut findings);
    }
    findings.sort();
    findings.dedup();
    findings
}

fn call_matches(name: &str, recv: Option<&str>, pat: &Pattern) -> bool {
    match pat {
        Pattern::Bare(n) => name == n,
        Pattern::Method { recv: r, method } => name == method && recv == Some(r.as_str()),
    }
}

fn analyze(
    rel_path: &str,
    fn_name: &str,
    g: &Cfg,
    spans: &SpanConfig,
    panic_ok: &[u32],
    findings: &mut Vec<Finding>,
) {
    // Classify nodes once. A `span_switch` node is *both*: it ends the
    // token flowing into it and begins a new one, so it terminates the
    // walk from an upstream begin and seeds its own walk.
    let mut begins: Vec<usize> = Vec::new();
    let mut ends: Vec<bool> = vec![false; g.nodes.len()];
    for (n, node) in g.nodes.iter().enumerate() {
        let NodeKind::Call { name, recv } = &node.kind else {
            continue;
        };
        let recv = recv.as_deref();
        if spans.end.iter().any(|p| call_matches(name, recv, p)) {
            ends[n] = true;
        }
        if spans.begin.iter().any(|p| call_matches(name, recv, p)) {
            begins.push(n);
        }
    }
    for &b in &begins {
        let begin_line = g.nodes[b].line;
        // BFS over the open-span region: stop at consuming nodes; every
        // edge that reaches the exit with the token live is a leak.
        let mut seen = vec![false; g.nodes.len()];
        let mut queue = vec![b];
        seen[b] = true;
        while let Some(n) = queue.pop() {
            if n != b && ends[n] {
                continue; // token consumed on this path
            }
            for e in &g.succ[n] {
                if e.to == g.exit {
                    let line = g.nodes[n].line;
                    let covered = panic_ok
                        .iter()
                        .any(|&end| end <= line && line - end <= WINDOW);
                    let msg = match e.kind {
                        EdgeKind::Question => Some(format!(
                            "`?` may exit `{fn_name}` with the span begun at line {begin_line} \
                             still open; end it before propagating the error"
                        )),
                        EdgeKind::Panic if covered => None,
                        EdgeKind::Panic => Some(format!(
                            "{} may panic in `{fn_name}` with the span begun at line \
                             {begin_line} still open; end it first or tag `// PANIC-OK:`",
                            describe(&g.nodes[n].kind)
                        )),
                        EdgeKind::Return => Some(format!(
                            "`return` exits `{fn_name}` with the span begun at line \
                             {begin_line} still open; pass the token to span_end/span_switch"
                        )),
                        _ => Some(format!(
                            "`{fn_name}` can end with the span begun at line {begin_line} \
                             still open; every exit path must consume the token"
                        )),
                    };
                    if let Some(msg) = msg {
                        findings.push(Finding {
                            file: rel_path.to_string(),
                            line,
                            check: "span-leak",
                            msg,
                        });
                    }
                    continue;
                }
                // A loop whose body consumes the token on every iteration
                // (begin before the loop, end inside it) exits consumed;
                // mirror the latch pass's LoopExit treatment.
                if e.kind == EdgeKind::LoopExit {
                    let body_ends = g
                        .loops
                        .iter()
                        .find(|l| l.head == n)
                        .is_some_and(|l| (l.body.0..l.body.1).any(|x| ends[x]));
                    if body_ends {
                        continue;
                    }
                }
                if !seen[e.to] {
                    seen[e.to] = true;
                    queue.push(e.to);
                }
            }
        }
    }
}

fn describe(kind: &NodeKind) -> String {
    match kind {
        NodeKind::Call { name, .. } => format!("`.{name}()`"),
        NodeKind::Panic { what } => format!("`{what}`"),
        _ => "a panic edge".to_string(),
    }
}
