//! Check 3: every `unsafe` token needs a justification comment — a
//! `SAFETY:` comment, or a `# Safety` doc section for `unsafe fn`
//! declarations whose contract lives in the doc. A contiguous comment
//! run counts as one unit: the justification may sit anywhere in the
//! run, as long as the run *ends* at most `WINDOW` lines above the
//! `unsafe` (or on its line). Applies everywhere, tests included: an
//! unjustified `unsafe` in a test is as much of a review hazard as one
//! in lib code.

use crate::lexer::{comment_runs, Lexed, TokKind};
use crate::Finding;

const WINDOW: u32 = 10;

pub fn check(rel_path: &str, lx: &Lexed) -> Vec<Finding> {
    let runs = comment_runs(lx, &["SAFETY", "# Safety"]);
    let mut findings = Vec::new();
    for tok in &lx.toks {
        if tok.kind != TokKind::Ident || tok.text != "unsafe" {
            continue;
        }
        let justified = runs
            .iter()
            .any(|&end| end <= tok.line && tok.line - end <= WINDOW);
        if !justified {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: tok.line,
                check: "unsafe-without-safety",
                msg: format!("`unsafe` without a `// SAFETY:` comment within {WINDOW} lines above"),
            });
        }
    }
    findings
}
