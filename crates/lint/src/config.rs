//! Parser for `LOCKS.toml` — a deliberate TOML subset (comments, table
//! arrays `[[class]]`, string/bool/integer values, and string arrays that
//! may span lines). Hand-rolled for the same reason the lexer is: the
//! linter must build without a crates registry.

/// One acquisition pattern: either `recv.method` (field receiver) or a
/// bare callable name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    Method { recv: String, method: String },
    Bare(String),
}

impl Pattern {
    pub fn parse(s: &str) -> Pattern {
        match s.split_once('.') {
            Some((recv, method)) => Pattern::Method {
                recv: recv.to_string(),
                method: method.to_string(),
            },
            None => Pattern::Bare(s.to_string()),
        }
    }
}

#[derive(Debug, Clone)]
pub struct LockClass {
    pub name: String,
    pub level: i64,
    pub ordered: bool,
    pub allow_io: bool,
    pub acquire: Vec<Pattern>,
    pub release: Vec<Pattern>,
    /// Drop-guard acquisition patterns: calls that take the same lock but
    /// return a guard object whose `Drop` releases it. The latch pass
    /// skips these (release-on-every-path holds by construction).
    pub guards: Vec<Pattern>,
    /// Repo-relative paths (forward slashes) the patterns are scoped to.
    pub files: Vec<String>,
}

/// `[pins]` — the epoch-pin escape analysis config: `sources` are the
/// calls that yield pin-scoped data (frozen-area slices), `files` scopes
/// the pass.
#[derive(Debug, Clone, Default)]
pub struct PinConfig {
    pub sources: Vec<Pattern>,
    pub files: Vec<String>,
}

/// `[spans]` — the span-leak pass config: `begin` patterns open a tracer
/// span token (`span_switch` appears in both lists: it ends one stage
/// *and* opens the next), `end` patterns consume one, `files` scopes the
/// pass to the instrumented hot paths.
#[derive(Debug, Clone, Default)]
pub struct SpanConfig {
    pub begin: Vec<Pattern>,
    pub end: Vec<Pattern>,
    pub files: Vec<String>,
}

/// One `[[escape]]` allowlist entry: a function that is blessed to move
/// pin-derived data out of its own scope (it transfers the pin along, or
/// re-establishes the justification some other audited way).
#[derive(Debug, Clone)]
pub struct EscapeEntry {
    /// Bare function name or `Type::name`.
    pub fn_name: String,
    pub file: String,
    pub reason: String,
}

#[derive(Debug, Default)]
pub struct Config {
    pub version: i64,
    pub classes: Vec<LockClass>,
    pub pins: PinConfig,
    pub spans: SpanConfig,
    pub escapes: Vec<EscapeEntry>,
}

impl Config {
    /// Classes whose `files` list contains `rel_path`.
    pub fn classes_for<'a>(&'a self, rel_path: &str) -> Vec<(usize, &'a LockClass)> {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.files.iter().any(|f| f == rel_path))
            .collect()
    }

    /// Is `fn_name`/`qual_name` in `file` a blessed escape point?
    pub fn escape_allowed(&self, file: &str, fn_name: &str, qual_name: &str) -> bool {
        self.escapes
            .iter()
            .any(|e| e.file == file && (e.fn_name == fn_name || e.fn_name == qual_name))
    }
}

enum Section {
    Top,
    Class(LockClass),
    Pins,
    Spans,
    Escape(EscapeEntry),
}

pub fn parse(src: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut cur = Section::Top;
    let mut lines = src.lines().enumerate().peekable();
    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut cfg, std::mem::replace(&mut cur, Section::Top))?;
            cur = match line.as_str() {
                "[[class]]" => Section::Class(LockClass {
                    name: String::new(),
                    level: -1,
                    ordered: false,
                    allow_io: false,
                    acquire: Vec::new(),
                    release: Vec::new(),
                    guards: Vec::new(),
                    files: Vec::new(),
                }),
                "[pins]" => Section::Pins,
                "[spans]" => Section::Spans,
                "[[escape]]" => Section::Escape(EscapeEntry {
                    fn_name: String::new(),
                    file: String::new(),
                    reason: String::new(),
                }),
                _ => return Err(format!("LOCKS.toml:{}: unsupported table {line}", ln + 1)),
            };
            continue;
        }
        let (key, mut val) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .ok_or_else(|| format!("LOCKS.toml:{}: expected `key = value`", ln + 1))?;
        // A string array may span lines: accumulate until brackets balance.
        if val.starts_with('[') {
            while val.matches('[').count() > val.matches(']').count() {
                let (_, next) = lines
                    .next()
                    .ok_or_else(|| format!("LOCKS.toml:{}: unterminated array", ln + 1))?;
                val.push(' ');
                val.push_str(strip_comment(next).trim());
            }
        }
        match &mut cur {
            Section::Top => match key.as_str() {
                "version" => cfg.version = parse_int(&val, ln)?,
                other => {
                    return Err(format!(
                        "LOCKS.toml:{}: unknown top-level key {other}",
                        ln + 1
                    ))
                }
            },
            Section::Class(c) => match key.as_str() {
                "name" => c.name = parse_str(&val, ln)?,
                "level" => c.level = parse_int(&val, ln)?,
                "ordered" => c.ordered = parse_bool(&val, ln)?,
                "allow_io" => c.allow_io = parse_bool(&val, ln)?,
                "acquire" => c.acquire = parse_patterns(&val, ln)?,
                "release" => c.release = parse_patterns(&val, ln)?,
                "guards" => c.guards = parse_patterns(&val, ln)?,
                "files" => c.files = parse_str_array(&val, ln)?,
                other => return Err(format!("LOCKS.toml:{}: unknown class key {other}", ln + 1)),
            },
            Section::Pins => match key.as_str() {
                "sources" => cfg.pins.sources = parse_patterns(&val, ln)?,
                "files" => cfg.pins.files = parse_str_array(&val, ln)?,
                other => return Err(format!("LOCKS.toml:{}: unknown pins key {other}", ln + 1)),
            },
            Section::Spans => match key.as_str() {
                "begin" => cfg.spans.begin = parse_patterns(&val, ln)?,
                "end" => cfg.spans.end = parse_patterns(&val, ln)?,
                "files" => cfg.spans.files = parse_str_array(&val, ln)?,
                other => return Err(format!("LOCKS.toml:{}: unknown spans key {other}", ln + 1)),
            },
            Section::Escape(e) => match key.as_str() {
                "fn" => e.fn_name = parse_str(&val, ln)?,
                "file" => e.file = parse_str(&val, ln)?,
                "reason" => e.reason = parse_str(&val, ln)?,
                other => return Err(format!("LOCKS.toml:{}: unknown escape key {other}", ln + 1)),
            },
        }
    }
    flush(&mut cfg, cur)?;
    // Global sanity: unique names, unique levels.
    for (i, a) in cfg.classes.iter().enumerate() {
        for b in &cfg.classes[i + 1..] {
            if a.name == b.name {
                return Err(format!("LOCKS.toml: duplicate class name {}", a.name));
            }
            if a.level == b.level {
                return Err(format!(
                    "LOCKS.toml: classes {} and {} share level {}",
                    a.name, b.name, a.level
                ));
            }
        }
    }
    Ok(cfg)
}

fn flush(cfg: &mut Config, section: Section) -> Result<(), String> {
    match section {
        Section::Top | Section::Pins | Section::Spans => {}
        Section::Class(c) => cfg.classes.push(validate(c)?),
        Section::Escape(e) => {
            if e.fn_name.is_empty() || e.file.is_empty() || e.reason.is_empty() {
                return Err(
                    "LOCKS.toml: [[escape]] entries need `fn`, `file`, and `reason`".to_string(),
                );
            }
            cfg.escapes.push(e);
        }
    }
    Ok(())
}

fn parse_patterns(v: &str, ln: usize) -> Result<Vec<Pattern>, String> {
    Ok(parse_str_array(v, ln)?
        .iter()
        .map(|s| Pattern::parse(s))
        .collect())
}

fn validate(c: LockClass) -> Result<LockClass, String> {
    if c.name.is_empty() {
        return Err("LOCKS.toml: class without a name".to_string());
    }
    if c.level < 0 {
        return Err(format!("LOCKS.toml: class {} without a level", c.name));
    }
    if c.acquire.is_empty() {
        return Err(format!(
            "LOCKS.toml: class {} without acquire patterns",
            c.name
        ));
    }
    if c.files.is_empty() {
        return Err(format!(
            "LOCKS.toml: class {} without a files scope",
            c.name
        ));
    }
    Ok(c)
}

/// Strip a `#` comment, respecting `"` string boundaries.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_int(v: &str, ln: usize) -> Result<i64, String> {
    v.parse()
        .map_err(|_| format!("LOCKS.toml:{}: expected integer, got {v}", ln + 1))
}

fn parse_bool(v: &str, ln: usize) -> Result<bool, String> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(format!("LOCKS.toml:{}: expected bool, got {v}", ln + 1)),
    }
}

fn parse_str(v: &str, ln: usize) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("LOCKS.toml:{}: expected string, got {v}", ln + 1))
    }
}

fn parse_str_array(v: &str, ln: usize) -> Result<Vec<String>, String> {
    let v = v.trim();
    if !(v.starts_with('[') && v.ends_with(']')) {
        return Err(format!("LOCKS.toml:{}: expected array, got {v}", ln + 1));
    }
    let mut out = Vec::new();
    for item in v[1..v.len() - 1].split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_str(item, ln)?);
    }
    Ok(out)
}
