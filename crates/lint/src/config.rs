//! Parser for `LOCKS.toml` — a deliberate TOML subset (comments, table
//! arrays `[[class]]`, string/bool/integer values, and string arrays that
//! may span lines). Hand-rolled for the same reason the lexer is: the
//! linter must build without a crates registry.

/// One acquisition pattern: either `recv.method` (field receiver) or a
/// bare callable name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    Method { recv: String, method: String },
    Bare(String),
}

impl Pattern {
    pub fn parse(s: &str) -> Pattern {
        match s.split_once('.') {
            Some((recv, method)) => Pattern::Method {
                recv: recv.to_string(),
                method: method.to_string(),
            },
            None => Pattern::Bare(s.to_string()),
        }
    }
}

#[derive(Debug, Clone)]
pub struct LockClass {
    pub name: String,
    pub level: i64,
    pub ordered: bool,
    pub allow_io: bool,
    pub acquire: Vec<Pattern>,
    pub release: Vec<Pattern>,
    /// Repo-relative paths (forward slashes) the patterns are scoped to.
    pub files: Vec<String>,
}

#[derive(Debug, Default)]
pub struct Config {
    pub version: i64,
    pub classes: Vec<LockClass>,
}

impl Config {
    /// Classes whose `files` list contains `rel_path`.
    pub fn classes_for<'a>(&'a self, rel_path: &str) -> Vec<(usize, &'a LockClass)> {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.files.iter().any(|f| f == rel_path))
            .collect()
    }
}

pub fn parse(src: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut cur: Option<LockClass> = None;
    let mut lines = src.lines().enumerate().peekable();
    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[class]]" {
            if let Some(c) = cur.take() {
                cfg.classes.push(validate(c)?);
            }
            cur = Some(LockClass {
                name: String::new(),
                level: -1,
                ordered: false,
                allow_io: false,
                acquire: Vec::new(),
                release: Vec::new(),
                files: Vec::new(),
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("LOCKS.toml:{}: unsupported table {line}", ln + 1));
        }
        let (key, mut val) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .ok_or_else(|| format!("LOCKS.toml:{}: expected `key = value`", ln + 1))?;
        // A string array may span lines: accumulate until brackets balance.
        if val.starts_with('[') {
            while val.matches('[').count() > val.matches(']').count() {
                let (_, next) = lines
                    .next()
                    .ok_or_else(|| format!("LOCKS.toml:{}: unterminated array", ln + 1))?;
                val.push(' ');
                val.push_str(strip_comment(next).trim());
            }
        }
        match cur.as_mut() {
            None => match key.as_str() {
                "version" => cfg.version = parse_int(&val, ln)?,
                other => {
                    return Err(format!(
                        "LOCKS.toml:{}: unknown top-level key {other}",
                        ln + 1
                    ))
                }
            },
            Some(c) => match key.as_str() {
                "name" => c.name = parse_str(&val, ln)?,
                "level" => c.level = parse_int(&val, ln)?,
                "ordered" => c.ordered = parse_bool(&val, ln)?,
                "allow_io" => c.allow_io = parse_bool(&val, ln)?,
                "acquire" => {
                    c.acquire = parse_str_array(&val, ln)?
                        .iter()
                        .map(|s| Pattern::parse(s))
                        .collect()
                }
                "release" => {
                    c.release = parse_str_array(&val, ln)?
                        .iter()
                        .map(|s| Pattern::parse(s))
                        .collect()
                }
                "files" => c.files = parse_str_array(&val, ln)?,
                other => return Err(format!("LOCKS.toml:{}: unknown class key {other}", ln + 1)),
            },
        }
    }
    if let Some(c) = cur.take() {
        cfg.classes.push(validate(c)?);
    }
    // Global sanity: unique names, unique levels.
    for (i, a) in cfg.classes.iter().enumerate() {
        for b in &cfg.classes[i + 1..] {
            if a.name == b.name {
                return Err(format!("LOCKS.toml: duplicate class name {}", a.name));
            }
            if a.level == b.level {
                return Err(format!(
                    "LOCKS.toml: classes {} and {} share level {}",
                    a.name, b.name, a.level
                ));
            }
        }
    }
    Ok(cfg)
}

fn validate(c: LockClass) -> Result<LockClass, String> {
    if c.name.is_empty() {
        return Err("LOCKS.toml: class without a name".to_string());
    }
    if c.level < 0 {
        return Err(format!("LOCKS.toml: class {} without a level", c.name));
    }
    if c.acquire.is_empty() {
        return Err(format!(
            "LOCKS.toml: class {} without acquire patterns",
            c.name
        ));
    }
    if c.files.is_empty() {
        return Err(format!(
            "LOCKS.toml: class {} without a files scope",
            c.name
        ));
    }
    Ok(c)
}

/// Strip a `#` comment, respecting `"` string boundaries.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_int(v: &str, ln: usize) -> Result<i64, String> {
    v.parse()
        .map_err(|_| format!("LOCKS.toml:{}: expected integer, got {v}", ln + 1))
}

fn parse_bool(v: &str, ln: usize) -> Result<bool, String> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(format!("LOCKS.toml:{}: expected bool, got {v}", ln + 1)),
    }
}

fn parse_str(v: &str, ln: usize) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("LOCKS.toml:{}: expected string, got {v}", ln + 1))
    }
}

fn parse_str_array(v: &str, ln: usize) -> Result<Vec<String>, String> {
    let v = v.trim();
    if !(v.starts_with('[') && v.ends_with(']')) {
        return Err(format!("LOCKS.toml:{}: expected array, got {v}", ln + 1));
    }
    let mut out = Vec::new();
    for item in v[1..v.len() - 1].split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_str(item, ln)?);
    }
    Ok(out)
}
