//! Check 6 (dataflow): panic-safe latch discipline. For every *manual*
//! lock class in `LOCKS.toml` (one with `release` patterns — no guard
//! object, so nothing releases it on unwind), every acquisition must
//! reach a release on **all** CFG paths out of the function: the normal
//! path, every early `return`, every `?`, and every panic edge
//! (`unwrap`/`expect`, `panic!`-family macros, indexing). A path that
//! exits while the class is held is a leaked latch — under the engine's
//! spin-acquire protocol that is a reader/writer deadlock, exactly the
//! bug class PR 6's interleaving harness caught dynamically.
//!
//! Escape hatches, both deliberate and auditable:
//!
//! * a `// PANIC-OK: …` comment run ending within `WINDOW` lines above a
//!   panic site suppresses the *panic-edge* finding there — for
//!   fail-stop sites where dying with the latch held is the designed
//!   behaviour (e.g. an install failure after the commit record is
//!   already durable). It never suppresses `?`/`return`/fall-off
//!   findings: those are recoverable paths and must release.
//! * `guards` patterns in the class declare drop-guard acquisitions the
//!   pass ignores entirely.
//!
//! Test code is exempt (`#[cfg(test)]` regions and `tests/` files): a
//! panicking test dies with its process; the lib defines the protocol.

use crate::cfg::{self, Cfg, EdgeKind, NodeKind};
use crate::config::{Config, LockClass, Pattern};
use crate::lexer::{comment_runs, in_regions, Lexed};
use crate::parser::{functions, Tree};
use crate::Finding;

const WINDOW: u32 = 10;

pub fn check(rel_path: &str, lx: &Lexed, trees: &[Tree], cfg: &Config) -> Vec<Finding> {
    let manual: Vec<(usize, &LockClass)> = cfg
        .classes_for(rel_path)
        .into_iter()
        .filter(|(_, c)| !c.release.is_empty())
        .collect();
    if manual.is_empty() || rel_path.contains("/tests/") {
        return Vec::new();
    }
    let test_regions = crate::lexer::test_regions(lx);
    let panic_ok = comment_runs(lx, &["PANIC-OK"]);
    let mut findings = Vec::new();
    for f in functions(trees) {
        if in_regions(&test_regions, f.line) {
            continue;
        }
        let g = cfg::build(f.body);
        analyze(rel_path, &f.name, &g, &manual, &panic_ok, &mut findings);
    }
    findings.sort();
    findings.dedup();
    findings
}

/// Does a CFG call node match a pattern, mirroring the lexical matcher:
/// a bare name matches any call of that name; `recv.method` requires the
/// receiver ident.
fn call_matches(name: &str, recv: Option<&str>, pat: &Pattern) -> bool {
    match pat {
        Pattern::Bare(n) => name == n,
        Pattern::Method { recv: r, method } => name == method && recv == Some(r.as_str()),
    }
}

fn analyze(
    rel_path: &str,
    fn_name: &str,
    g: &Cfg,
    manual: &[(usize, &LockClass)],
    panic_ok: &[u32],
    findings: &mut Vec<Finding>,
) {
    // Classify nodes once.
    let mut acquires: Vec<(usize, usize)> = Vec::new(); // (node, manual-idx)
    let mut releases: Vec<Vec<bool>> = vec![vec![false; g.nodes.len()]; manual.len()];
    for (n, node) in g.nodes.iter().enumerate() {
        let NodeKind::Call { name, recv } = &node.kind else {
            continue;
        };
        let recv = recv.as_deref();
        for (mi, &(_, class)) in manual.iter().enumerate() {
            if class.guards.iter().any(|p| call_matches(name, recv, p)) {
                continue;
            }
            if class.release.iter().any(|p| call_matches(name, recv, p)) {
                releases[mi][n] = true;
            } else if class.acquire.iter().any(|p| call_matches(name, recv, p)) {
                acquires.push((n, mi));
            }
        }
    }
    for &(a, mi) in &acquires {
        let class = manual[mi].1;
        let acq_line = g.nodes[a].line;
        // BFS over the hold region: stop at release nodes; every edge
        // that reaches the exit while held is a leak.
        let mut seen = vec![false; g.nodes.len()];
        let mut queue = vec![a];
        seen[a] = true;
        while let Some(n) = queue.pop() {
            if n != a && releases[mi][n] {
                continue; // released on this path
            }
            for e in &g.succ[n] {
                if e.to == g.exit {
                    let line = g.nodes[n].line;
                    let covered = panic_ok
                        .iter()
                        .any(|&end| end <= line && line - end <= WINDOW);
                    let msg = match (e.kind, &g.nodes[n].kind) {
                        (EdgeKind::Question, _) => Some(format!(
                            "`?` may exit `{fn_name}` while `{}` is held (acquired line \
                             {acq_line}); release on the error path",
                            class.name
                        )),
                        (EdgeKind::Panic, kind) if !covered => {
                            // `acquire(...).unwrap()`: the panic fires only
                            // when the acquire itself failed — nothing is
                            // held on that edge.
                            let consumes_acquire = matches!(
                                kind,
                                NodeKind::Call { recv: Some(r), .. }
                                    if class.acquire.iter().any(|p| matches!(
                                        p,
                                        Pattern::Bare(n) if n == r
                                    ))
                            );
                            if consumes_acquire && direct_succ(g, a, n) {
                                None
                            } else {
                                Some(format!(
                                    "{} may panic in `{fn_name}` while `{}` is held (acquired \
                                     line {acq_line}); propagate an error or tag `// PANIC-OK:`",
                                    describe(&g.nodes[n].kind),
                                    class.name
                                ))
                            }
                        }
                        (EdgeKind::Panic, _) => None, // PANIC-OK covered
                        (EdgeKind::Return, _) => Some(format!(
                            "`return` exits `{fn_name}` while `{}` is held (acquired line \
                             {acq_line}); release before returning",
                            class.name
                        )),
                        (_, _) => Some(format!(
                            "`{fn_name}` can end while `{}` is held (acquired line {acq_line}); \
                             release on every path",
                            class.name
                        )),
                    };
                    if let Some(msg) = msg {
                        findings.push(Finding {
                            file: rel_path.to_string(),
                            line,
                            check: "latch-leak",
                            msg,
                        });
                    }
                    continue;
                }
                // A loop whose body releases the class still releases it
                // when the body runs zero times? No — the LoopExit edge
                // models exactly that case, so it only counts as released
                // if the *head* was reached already-released (handled
                // above). But a loop that releases on every iteration and
                // is entered with the full set (the unlatch loop) exits
                // released: treat LoopExit as releasing when the body
                // contains a release of this class.
                if e.kind == EdgeKind::LoopExit {
                    let body_releases = g
                        .loops
                        .iter()
                        .find(|l| l.head == n)
                        .is_some_and(|l| (l.body.0..l.body.1).any(|b| releases[mi][b]));
                    if body_releases {
                        continue;
                    }
                }
                if !seen[e.to] {
                    seen[e.to] = true;
                    queue.push(e.to);
                }
            }
        }
    }
}

/// Is `to` a direct successor of `from`?
fn direct_succ(g: &Cfg, from: usize, to: usize) -> bool {
    g.succ[from].iter().any(|e| e.to == to)
}

fn describe(kind: &NodeKind) -> String {
    match kind {
        NodeKind::Call { name, .. } => format!("`.{name}()`"),
        NodeKind::Panic { what } => format!("`{what}`"),
        _ => "a panic edge".to_string(),
    }
}
