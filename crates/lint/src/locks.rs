//! Checks 1 and 2: lexical lock-hierarchy order and blocking I/O under a
//! `no_io` lock class (see `LOCKS.toml` for the declared hierarchy).
//!
//! The analysis is per function and lexical, tracking brace scopes:
//!
//! * an acquisition in a `let` statement holds until `drop(var)` or the
//!   end of the enclosing block;
//! * an acquisition in a statement header (`for`/`if`/`while`/`match`)
//!   holds for the attached block;
//! * an acquisition that is a block's tail expression propagates to the
//!   statement the block belongs to (`let g = if c { x.lock() } …`);
//! * any other acquisition is a temporary and ends with its statement;
//! * a *manual* class (one with `release` patterns — its lock has no
//!   guard object) holds from the acquisition to the next occurrence of
//!   a release pattern, or to the end of the function.
//!
//! This is deliberately an under-approximation across function calls (a
//! callee's acquisitions are checked in the callee, against whatever is
//! lexically held *there*); the runtime witness in `anker_util::lockcheck`
//! covers the compositional, dynamic side of the same invariant.

use crate::config::{Config, LockClass, Pattern};
use crate::lexer::{Lexed, Tok, TokKind};
use crate::Finding;

/// Blocking-I/O token sequences (matched against the token stream; a
/// leading `.` anchors method calls so `fn sync_all(` definitions do not
/// match). Buffered WAL appends are intentionally absent — see
/// LOCKS.toml's header comment.
const IO_METHODS: &[&str] = &[
    "sync_data",
    "sync_all",
    "sync_to",
    "read_to_end",
    "write_all",
    "set_len",
    "flush",
];
const IO_PATHS: &[[&str; 3]] = &[
    ["File", "::", "open"],
    ["File", "::", "create"],
    ["OpenOptions", "::", "new"],
    ["fs", "::", "remove_file"],
    ["fs", "::", "rename"],
    ["fs", "::", "create_dir_all"],
    ["fs", "::", "read_dir"],
];
const IO_BARE: &[&str] = &["sync_dir"];

#[derive(Debug, Clone)]
struct Hold {
    class: usize,
    line: u32,
    /// `let`-binding name, when there is one to match `drop(name)`.
    var: Option<String>,
}

pub fn check(rel_path: &str, lx: &Lexed, cfg: &Config) -> Vec<Finding> {
    let active = cfg.classes_for(rel_path);
    if active.is_empty() {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let t = &lx.toks;
    let mut i = 0usize;
    while i < t.len() {
        if t[i].kind == TokKind::Ident && t[i].text == "fn" {
            // Skip to the body `{` (or `;` for a trait signature).
            let mut j = i + 1;
            while j < t.len() && t[j].text != "{" && t[j].text != ";" {
                j += 1;
            }
            if j < t.len() && t[j].text == "{" {
                let end = analyze_fn(t, j, rel_path, cfg, &active, &mut findings);
                i = end;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    findings
}

/// Analyze one function body starting at the `{` at `open`. Returns the
/// index just past the matching `}`.
fn analyze_fn(
    t: &[Tok],
    open: usize,
    rel_path: &str,
    cfg: &Config,
    active: &[(usize, &LockClass)],
    findings: &mut Vec<Finding>,
) -> usize {
    // Scope stack: holds bound to each brace scope. Parallel statement
    // stack: acquisitions pending in the statement at each nesting depth.
    let mut scopes: Vec<Vec<Hold>> = vec![Vec::new()];
    let mut stmts: Vec<StmtState> = vec![StmtState::default()];
    // Manual-class holds (release-pattern classes) live at fn level.
    let mut sticky: Vec<Hold> = Vec::new();

    let mut i = open + 1;
    while i < t.len() {
        let text = t[i].text.as_str();
        match text {
            "{" => {
                let stmt = stmts.last_mut().expect("stmt stack");
                let header = std::mem::take(&mut stmt.pending);
                // Header acquisitions (for/if/while/match) hold for the
                // new block.
                scopes.push(header);
                stmts.push(StmtState::default());
                i += 1;
            }
            "}" => {
                scopes.pop();
                // A block's unfinalized tail acquisitions flow into the
                // enclosing statement (`let g = { …lock() };`).
                let inner = stmts.pop().expect("stmt stack");
                if scopes.is_empty() {
                    return i + 1;
                }
                stmts
                    .last_mut()
                    .expect("stmt stack")
                    .pending
                    .extend(inner.pending);
                i += 1;
            }
            ";" => {
                let stmt = stmts.last_mut().expect("stmt stack");
                let pending = std::mem::take(&mut stmt.pending);
                let var = stmt.let_var.take();
                let is_let = std::mem::take(&mut stmt.has_let);
                for mut h in pending {
                    if is_let {
                        h.var = var.clone();
                        scopes.last_mut().expect("scope").push(h);
                    }
                    // else: temporary — released at the statement end.
                }
                i += 1;
            }
            "let" if t[i].kind == TokKind::Ident => {
                let stmt = stmts.last_mut().expect("stmt stack");
                stmt.has_let = true;
                let mut j = i + 1;
                if j < t.len() && t[j].text == "mut" {
                    j += 1;
                }
                if j < t.len() && t[j].kind == TokKind::Ident {
                    stmt.let_var = Some(t[j].text.clone());
                }
                i += 1;
            }
            "drop" if t[i].kind == TokKind::Ident && next_is(t, i + 1, "(") => {
                if i + 2 < t.len() && t[i + 2].kind == TokKind::Ident && next_is(t, i + 3, ")") {
                    let name = &t[i + 2].text;
                    for scope in scopes.iter_mut() {
                        scope.retain(|h| h.var.as_deref() != Some(name.as_str()));
                    }
                    i += 4;
                    continue;
                }
                i += 1;
            }
            _ => {
                // Release patterns for manual classes.
                let mut consumed = false;
                for &(ci, class) in active {
                    if !class.release.is_empty()
                        && class.release.iter().any(|p| matches_at(t, i, p))
                    {
                        sticky.retain(|h| h.class != ci);
                        consumed = true;
                        break;
                    }
                }
                if !consumed {
                    if let Some(&(ci, class)) = active
                        .iter()
                        .find(|(_, c)| c.acquire.iter().any(|p| matches_at(t, i, p)))
                    {
                        report_order(
                            t[i].line, ci, class, cfg, &scopes, &stmts, &sticky, rel_path, findings,
                        );
                        let hold = Hold {
                            class: ci,
                            line: t[i].line,
                            var: None,
                        };
                        if class.release.is_empty() {
                            stmts.last_mut().expect("stmt stack").pending.push(hold);
                        } else {
                            sticky.push(hold);
                        }
                    } else if is_io(t, i) {
                        let held: Vec<&Hold> = scopes
                            .iter()
                            .flatten()
                            .chain(stmts.iter().flat_map(|s| s.pending.iter()))
                            .chain(sticky.iter())
                            .collect();
                        for h in held {
                            if !cfg.classes[h.class].allow_io {
                                findings.push(Finding {
                                    file: rel_path.to_string(),
                                    line: t[i].line,
                                    check: "io-under-lock",
                                    msg: format!(
                                        "blocking I/O `{}` while holding no_io lock class `{}` \
                                         (acquired line {})",
                                        t[i].text, cfg.classes[h.class].name, h.line
                                    ),
                                });
                            }
                        }
                    }
                }
                i += 1;
            }
        }
    }
    t.len()
}

#[derive(Debug, Default)]
struct StmtState {
    pending: Vec<Hold>,
    has_let: bool,
    let_var: Option<String>,
}

#[allow(clippy::too_many_arguments)]
fn report_order(
    line: u32,
    new_class: usize,
    class: &LockClass,
    cfg: &Config,
    scopes: &[Vec<Hold>],
    stmts: &[StmtState],
    sticky: &[Hold],
    rel_path: &str,
    findings: &mut Vec<Finding>,
) {
    let held = scopes
        .iter()
        .flatten()
        .chain(stmts.iter().flat_map(|s| s.pending.iter()))
        .chain(sticky.iter());
    for h in held {
        let hc = &cfg.classes[h.class];
        if hc.level > class.level {
            findings.push(Finding {
                file: rel_path.to_string(),
                line,
                check: "lock-order",
                msg: format!(
                    "acquires `{}` (level {}) while holding `{}` (level {}, acquired line {}): \
                     inverts the LOCKS.toml hierarchy",
                    class.name, class.level, hc.name, hc.level, h.line
                ),
            });
        } else if hc.level == class.level && !(h.class == new_class && class.ordered) {
            findings.push(Finding {
                file: rel_path.to_string(),
                line,
                check: "lock-order",
                msg: format!(
                    "re-acquires level {} (`{}` while holding `{}`, acquired line {}) without an \
                     ordered-class key protocol",
                    class.level, class.name, hc.name, h.line
                ),
            });
        }
    }
}

fn next_is(t: &[Tok], i: usize, s: &str) -> bool {
    t.get(i).is_some_and(|x| x.text == s)
}

fn prev_is_fn_or_dot(t: &[Tok], i: usize) -> (bool, bool) {
    match i.checked_sub(1).and_then(|j| t.get(j)) {
        Some(p) => (p.text == "fn", p.text == "."),
        None => (false, false),
    }
}

/// Does `pat` match at token index `i`? `i` must be the method/name ident.
fn matches_at(t: &[Tok], i: usize, pat: &Pattern) -> bool {
    if t[i].kind != TokKind::Ident || !next_is(t, i + 1, "(") {
        return false;
    }
    let (after_fn, after_dot) = prev_is_fn_or_dot(t, i);
    if after_fn {
        return false;
    }
    match pat {
        Pattern::Bare(name) => t[i].text == *name,
        Pattern::Method { recv, method } => {
            if t[i].text != *method || !after_dot {
                return false;
            }
            // Walk back over the `.`, then optionally one balanced `[…]`
            // index group (`shards[i].lock()`), to the receiver ident.
            let mut j = match (i - 1).checked_sub(1) {
                Some(j) => j,
                None => return false,
            };
            if t[j].text == "]" {
                let mut depth = 1i32;
                loop {
                    j = match j.checked_sub(1) {
                        Some(j) => j,
                        None => return false,
                    };
                    match t[j].text.as_str() {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                    if depth == 0 {
                        break;
                    }
                }
                j = match j.checked_sub(1) {
                    Some(j) => j,
                    None => return false,
                };
            }
            t[j].kind == TokKind::Ident && t[j].text == *recv
        }
    }
}

fn is_io(t: &[Tok], i: usize) -> bool {
    if t[i].kind != TokKind::Ident {
        return false;
    }
    let (after_fn, after_dot) = prev_is_fn_or_dot(t, i);
    if after_fn {
        return false;
    }
    if after_dot && next_is(t, i + 1, "(") && IO_METHODS.contains(&t[i].text.as_str()) {
        return true;
    }
    if !after_dot && next_is(t, i + 1, "(") && IO_BARE.contains(&t[i].text.as_str()) {
        return true;
    }
    IO_PATHS.iter().any(|p| {
        t[i].text == p[0]
            && t.get(i + 1).is_some_and(|x| x.text == p[1])
            && t.get(i + 2).is_some_and(|x| x.text == p[2])
    })
}
