//! A minimal Rust lexer: just enough to tell code from comments and
//! strings, attach line numbers, and expose comments for the
//! `SAFETY:`/`ORDERING:` proximity checks. Deliberately not a parser —
//! the checks in this crate are lexical by design (see DESIGN.md,
//! "Concurrency invariants").

/// What a token is. Punctuation keeps its text; `::` is fused into one
/// token because every pattern in this crate matches paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    /// String literal; `text` holds the *content* (quotes stripped, raw
    /// escapes kept — the sync-point names this crate cares about never
    /// contain escapes).
    Str,
    Num,
    Punct,
    Lifetime,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment line (a block comment contributes one entry per line it
/// spans), with leading `//`/`///`/`/*` markers kept.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                i += 2;
                let mut text = String::from("/*");
                let mut depth = 1u32;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        text.push_str("/*");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        text.push_str("*/");
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            out.comments.push(Comment {
                                text: std::mem::take(&mut text),
                                line,
                            });
                            line += 1;
                        } else {
                            text.push(b[i]);
                        }
                        i += 1;
                    }
                }
                if !text.is_empty() {
                    out.comments.push(Comment { text, line });
                }
            }
            '"' => {
                let (s, ni, nl) = lex_string(&b, i, line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: s,
                    line,
                });
                i = ni;
                line = nl;
            }
            '\'' => {
                // Char literal or lifetime.
                if i + 1 < n && b[i + 1] == '\\' {
                    // Escaped char literal: skip to the closing quote.
                    i += 2;
                    while i < n && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < n && b[i + 2] == '\'' {
                    i += 3; // plain char literal 'x'
                } else {
                    // Lifetime: 'ident (no closing quote).
                    let start = i + 1;
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[start..i].iter().collect(),
                        line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // Raw / byte string prefixes: r"..", r#".."#, b"..", br"..".
                let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br");
                if is_str_prefix && i < n && (b[i] == '"' || (b[i] == '#' && ident != "b")) {
                    let (s, ni, nl) = lex_raw_or_plain(&b, i, line, ident != "b");
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: s,
                        line,
                    });
                    i = ni;
                    line = nl;
                } else if ident == "b" && i < n && b[i] == '\'' {
                    // Byte char literal b'x' / b'\n'.
                    i += 1;
                    if i < n && b[i] == '\\' {
                        i += 1;
                    }
                    while i < n && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else {
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: ident,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                // Fractional part, but never eat a `..` range operator.
                if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            ':' if i + 1 < n && b[i + 1] == ':' => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: "::".to_string(),
                    line,
                });
                i += 2;
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn lex_string(b: &[char], mut i: usize, mut line: u32) -> (String, usize, u32) {
    debug_assert_eq!(b[i], '"');
    i += 1;
    let mut s = String::new();
    while i < b.len() {
        match b[i] {
            '\\' if i + 1 < b.len() => {
                s.push(b[i]);
                s.push(b[i + 1]);
                if b[i + 1] == '\n' {
                    line += 1;
                }
                i += 2;
            }
            '"' => return (s, i + 1, line),
            c => {
                if c == '\n' {
                    line += 1;
                }
                s.push(c);
                i += 1;
            }
        }
    }
    (s, i, line)
}

/// Lex a raw string `#*"..."#*` (after the `r`/`br` prefix ident), or a
/// plain string when the prefix was `b`.
fn lex_raw_or_plain(b: &[char], mut i: usize, mut line: u32, raw: bool) -> (String, usize, u32) {
    if !raw {
        return lex_string(b, i, line);
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != '"' {
        return (String::new(), i, line);
    }
    i += 1;
    let mut s = String::new();
    'outer: while i < b.len() {
        if b[i] == '"' {
            let mut j = i + 1;
            let mut k = 0;
            while k < hashes && j < b.len() && b[j] == '#' {
                k += 1;
                j += 1;
            }
            if k == hashes {
                i = j;
                break 'outer;
            }
        }
        if b[i] == '\n' {
            line += 1;
        }
        s.push(b[i]);
        i += 1;
    }
    (s, i, line)
}

/// Line ranges (inclusive) covered by `#[cfg(test)]`-style attributes —
/// an attribute whose `cfg(...)` argument mentions `test` — extended to
/// the end of the brace block of the item that follows. Checks that only
/// apply to library code consult this.
pub fn test_regions(lx: &Lexed) -> Vec<(u32, u32)> {
    let t = &lx.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 3 < t.len() {
        if t[i].text == "#"
            && t[i + 1].text == "["
            && t[i + 2].text == "cfg"
            && t[i + 3].text == "("
        {
            // Scan the balanced cfg(...) argument for a `test` ident.
            let mut j = i + 4;
            let mut depth = 1i32;
            let mut mentions_test = false;
            while j < t.len() && depth > 0 {
                match t[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "test" if t[j].kind == TokKind::Ident => mentions_test = true,
                    _ => {}
                }
                j += 1;
            }
            if mentions_test {
                // Skip past the attribute's closing `]`, then to the first
                // `{` of the annotated item, then to its matching `}`.
                while j < t.len() && t[j].text != "]" {
                    j += 1;
                }
                let start_line = t[i].line;
                let mut k = j;
                while k < t.len() && t[k].text != "{" && t[k].text != ";" {
                    k += 1;
                }
                if k < t.len() && t[k].text == "{" {
                    let mut bd = 1i32;
                    k += 1;
                    while k < t.len() && bd > 0 {
                        match t[k].text.as_str() {
                            "{" => bd += 1,
                            "}" => bd -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                let end_line = t[k.min(t.len() - 1)].line;
                out.push((start_line, end_line));
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// End lines of contiguous comment runs that contain at least one of
/// `needles`. A "run" is a maximal sequence of comment lines on
/// consecutive line numbers — a doc block, a `//` paragraph, or a block
/// comment. Proximity checks measure from the run's *end*, so a long
/// justification block still covers the code right below it.
pub fn comment_runs(lx: &Lexed, needles: &[&str]) -> Vec<u32> {
    let mut out = Vec::new();
    let mut run_end: Option<u32> = None;
    let mut run_hit = false;
    for c in &lx.comments {
        match run_end {
            Some(end) if c.line <= end + 1 => {}
            Some(end) => {
                if run_hit {
                    out.push(end);
                }
                run_hit = false;
            }
            None => {}
        }
        run_end = Some(c.line);
        run_hit = run_hit || needles.iter().any(|n| c.text.contains(n));
    }
    if let (Some(end), true) = (run_end, run_hit) {
        out.push(end);
    }
    out
}

/// Every contiguous comment run, as (end line, concatenated text). Used
/// by passes that must *parse* the justification (the structured
/// `SAFETY(provenance: …)` tags), not just detect its presence.
pub fn comment_runs_text(lx: &Lexed) -> Vec<(u32, String)> {
    let mut out: Vec<(u32, String)> = Vec::new();
    for c in &lx.comments {
        match out.last_mut() {
            Some((end, text)) if c.line <= *end + 1 => {
                *end = c.line;
                text.push('\n');
                text.push_str(&c.text);
            }
            _ => out.push((c.line, c.text.clone())),
        }
    }
    out
}
