//! Check 8 (dataflow): the unsafe-provenance audit. Every `unsafe`
//! *block* must carry a structured tag in the comment run above it:
//!
//! ```text
//! // SAFETY(provenance: area, bounds: len): the mapping `area` stays
//! // alive for `&self`, and `len` was clamped to the mapped length.
//! ```
//!
//! `provenance:` names the symbols the pointer's validity comes from
//! (the mapping, the pin, the sole-owner argument); `bounds:` names the
//! length/bounds facts an out-of-bounds argument would violate (optional
//! — a pure ownership transfer has no bounds). The pass verifies every
//! named symbol actually occurs in the enclosing function (parameters,
//! return type, or body) — a tag naming symbols that no longer exist is
//! exactly the stale-comment rot this check exists to catch.
//!
//! `unsafe fn` / `unsafe impl` declarations are not blocks: their
//! contract lives in `# Safety` docs, enforced by the legacy lexical
//! check ([`crate::safety`]), which also still requires *some* SAFETY
//! comment on every `unsafe` token.
//!
//! The pass also builds the per-crate inventory behind
//! `results/unsafe_audit.json`: CI regenerates it and fails on any
//! unsafe-count delta without a matching audit-file update, so new
//! `unsafe` cannot slip in untagged or untracked.

use crate::lexer::{comment_runs_text, Lexed};
use crate::parser::{functions, FnItem, Tree};
use crate::Finding;

const WINDOW: u32 = 10;

/// One `unsafe` block in the tree, with its parsed tag (empty vectors
/// when untagged — the finding is reported separately).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    pub provenance: Vec<String>,
    pub bounds: Vec<String>,
}

pub fn check(
    rel_path: &str,
    lx: &Lexed,
    trees: &[Tree],
    sites: &mut Vec<UnsafeSite>,
) -> Vec<Finding> {
    let runs = comment_runs_text(lx);
    let fns = functions(trees);
    let mut blocks = Vec::new();
    find_unsafe_blocks(trees, &mut blocks);
    let mut findings = Vec::new();
    for line in blocks {
        // Nearest run ending within the window above the block.
        let tag = runs
            .iter()
            .filter(|(end, text)| *end <= line && line - end <= WINDOW && text.contains("SAFETY("))
            .max_by_key(|(end, _)| *end)
            .and_then(|(_, text)| parse_tag(text));
        let Some((provenance, bounds)) = tag else {
            findings.push(Finding {
                file: rel_path.to_string(),
                line,
                check: "unsafe-provenance",
                msg: format!(
                    "`unsafe` block without a structured `// SAFETY(provenance: …)` tag within \
                     {WINDOW} lines above"
                ),
            });
            sites.push(UnsafeSite {
                file: rel_path.to_string(),
                line,
                provenance: Vec::new(),
                bounds: Vec::new(),
            });
            continue;
        };
        if provenance.is_empty() {
            findings.push(Finding {
                file: rel_path.to_string(),
                line,
                check: "unsafe-provenance",
                msg: "`SAFETY(…)` tag with an empty `provenance:` field — name the symbol the \
                      pointer's validity comes from"
                    .to_string(),
            });
        }
        let scope = enclosing_fn(&fns, line);
        for sym in provenance.iter().chain(bounds.iter()) {
            let resolved = match scope {
                Some(f) => f.contains_ident(sym),
                // Module-level unsafe (statics, consts): resolve against
                // the whole file.
                None => tree_contains_ident(trees, sym),
            };
            if !resolved {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line,
                    check: "unsafe-provenance",
                    msg: format!(
                        "SAFETY tag names `{sym}`, which does not appear in the enclosing \
                         function{} — stale tag?",
                        scope.map_or(String::new(), |f| format!(" `{}`", f.name))
                    ),
                });
            }
        }
        sites.push(UnsafeSite {
            file: rel_path.to_string(),
            line,
            provenance,
            bounds,
        });
    }
    findings
}

/// Lines of every `unsafe { … }` block (an `unsafe` ident directly
/// followed by a brace group — `unsafe fn`/`unsafe impl` have an ident
/// in between and are skipped).
fn find_unsafe_blocks(trees: &[Tree], out: &mut Vec<u32>) {
    for (i, t) in trees.iter().enumerate() {
        if let Some(tok) = t.leaf() {
            if tok.kind == crate::lexer::TokKind::Ident
                && tok.text == "unsafe"
                && trees
                    .get(i + 1)
                    .and_then(Tree::group)
                    .is_some_and(|g| g.delim == '{')
            {
                out.push(tok.line);
            }
        }
        if let Some(g) = t.group() {
            find_unsafe_blocks(&g.children, out);
        }
    }
}

/// Parse `SAFETY(provenance: …, bounds: …)` out of a comment run's text:
/// balanced-paren extraction, then the two labelled ident lists.
/// Returns `None` when there is no well-formed `SAFETY(…)` group or no
/// `provenance:` label inside it.
fn parse_tag(text: &str) -> Option<(Vec<String>, Vec<String>)> {
    let start = text.find("SAFETY(")? + "SAFETY".len();
    let rest = &text[start..];
    let mut depth = 0usize;
    let mut end = None;
    for (i, ch) in rest.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let inner = &rest[1..end?];
    let provenance_at = inner.find("provenance:")?;
    let after_prov = &inner[provenance_at + "provenance:".len()..];
    let (prov_text, bounds_text) = match after_prov.find("bounds:") {
        Some(b) => (&after_prov[..b], &after_prov[b + "bounds:".len()..]),
        None => (after_prov, ""),
    };
    Some((idents_of(prov_text), idents_of(bounds_text)))
}

/// Split free text into identifier tokens, dropping `//` comment markers
/// and punctuation. A lone `-` list (`bounds: -`) yields the empty set.
fn idents_of(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '_' {
            cur.push(ch);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out.retain(|s| !s.chars().all(|c| c.is_ascii_digit()));
    out
}

/// Innermost function whose line span contains `line`.
fn enclosing_fn<'a, 't>(fns: &'a [FnItem<'t>], line: u32) -> Option<&'a FnItem<'t>> {
    fns.iter()
        .filter(|f| {
            let (a, b) = f.lines();
            a <= line && line <= b
        })
        .min_by_key(|f| {
            let (a, b) = f.lines();
            b - a
        })
}

fn tree_contains_ident(trees: &[Tree], ident: &str) -> bool {
    trees.iter().any(|t| match t {
        Tree::Leaf(tok) => tok.text == ident,
        Tree::Group(g) => tree_contains_ident(&g.children, ident),
    })
}

/// Serialize the inventory to the committed JSON shape: stable ordering,
/// per-crate counts first (what the drift check compares), then the full
/// site list for review diffs.
pub fn audit_json(sites: &[UnsafeSite]) -> String {
    let mut sites: Vec<&UnsafeSite> = sites.iter().collect();
    sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let mut by_crate: std::collections::BTreeMap<String, usize> = Default::default();
    for s in &sites {
        *by_crate.entry(crate_of(&s.file)).or_default() += 1;
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"total\": {},\n", sites.len()));
    out.push_str("  \"crates\": {\n");
    let n = by_crate.len();
    for (i, (name, count)) in by_crate.iter().enumerate() {
        out.push_str(&format!(
            "    \"{name}\": {count}{}\n",
            if i + 1 < n { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"sites\": [\n");
    let m = sites.len();
    for (i, s) in sites.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"provenance\": [{}], \"bounds\": [{}]}}{}\n",
            s.file,
            s.line,
            quote_list(&s.provenance),
            quote_list(&s.bounds),
            if i + 1 < m { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn quote_list(items: &[String]) -> String {
    items
        .iter()
        .map(|s| format!("\"{s}\""))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Top-level component a file belongs to for per-crate counting:
/// `crates/vmem/src/os.rs` → `crates/vmem`.
pub fn crate_of(file: &str) -> String {
    let parts: Vec<&str> = file.split('/').collect();
    match parts.as_slice() {
        ["crates", name, ..] => format!("crates/{name}"),
        [first, ..] => (*first).to_string(),
        [] => String::new(),
    }
}

/// Compare the freshly computed inventory against the committed audit
/// file's per-crate **counts** (line churn inside a crate does not trip
/// the check — `cargo run -p anker-lint -- audit` refreshes the site
/// list). Returns findings for every drifted crate. Skipped when no
/// audit file exists (fixture workspaces).
pub fn drift(audit_path: &std::path::Path, sites: &[UnsafeSite]) -> Vec<Finding> {
    let Ok(committed) = std::fs::read_to_string(audit_path) else {
        return Vec::new();
    };
    let mut recorded: std::collections::BTreeMap<String, usize> = Default::default();
    if let Some(start) = committed.find("\"crates\"") {
        let body = &committed[start..];
        if let (Some(open), Some(close)) = (body.find('{'), body.find('}')) {
            for pair in body[open + 1..close].split(',') {
                let Some((k, v)) = pair.split_once(':') else {
                    continue;
                };
                let key = k.trim().trim_matches('"').to_string();
                if let Ok(n) = v.trim().parse::<usize>() {
                    recorded.insert(key, n);
                }
            }
        }
    }
    let mut actual: std::collections::BTreeMap<String, usize> = Default::default();
    for s in sites {
        *actual.entry(crate_of(&s.file)).or_default() += 1;
    }
    let mut findings = Vec::new();
    let keys: std::collections::BTreeSet<&String> = recorded.keys().chain(actual.keys()).collect();
    for key in keys {
        let rec = recorded.get(key).copied().unwrap_or(0);
        let act = actual.get(key).copied().unwrap_or(0);
        if rec != act {
            findings.push(Finding {
                file: "results/unsafe_audit.json".to_string(),
                line: 0,
                check: "unsafe-audit-drift",
                msg: format!(
                    "`{key}` has {act} unsafe block(s) but the committed audit records {rec}; \
                     run `cargo run -p anker-lint -- audit` and commit the refreshed inventory"
                ),
            });
        }
    }
    findings
}
