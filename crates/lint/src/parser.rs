//! A registry-free token-tree parser on top of [`crate::lexer`]: groups
//! the flat token stream by `{}`/`()`/`[]` delimiters and extracts
//! function items with their `impl` context. This is the substrate the
//! dataflow passes ([`crate::latch`], [`crate::escape`],
//! [`crate::provenance`]) and the CFG builder ([`crate::cfg`]) walk —
//! still not a Rust parser (no expressions, no types), just enough
//! structure to know what belongs to which function and which brace.
//!
//! The parser is total: any token stream produces a tree. Unmatched
//! closers become leaves, unmatched openers are closed at end of input —
//! the lint must never panic or loop on weird input (see the robustness
//! proptest in `tests/robustness.rs`).

use crate::lexer::{Lexed, Tok, TokKind};

/// One node of the token tree: a plain token, or a delimited group.
#[derive(Debug, Clone)]
pub enum Tree {
    Leaf(Tok),
    Group(Group),
}

/// A delimited group. `delim` is the opening character (`{`, `(`, `[`).
#[derive(Debug, Clone)]
pub struct Group {
    pub delim: char,
    pub open_line: u32,
    pub close_line: u32,
    pub children: Vec<Tree>,
}

impl Tree {
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group(g) => g.open_line,
        }
    }

    /// The leaf's text, or `None` for groups.
    pub fn leaf(&self) -> Option<&Tok> {
        match self {
            Tree::Leaf(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// Leaf-text equality, excluding string literals (a literal `"?"`
    /// must not read as the `?` operator).
    pub fn is_leaf(&self, s: &str) -> bool {
        matches!(self, Tree::Leaf(t) if t.kind != TokKind::Str && t.text == s)
    }

    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Group(g) => Some(g),
            Tree::Leaf(_) => None,
        }
    }
}

fn closer(open: char) -> char {
    match open {
        '{' => '}',
        '(' => ')',
        '[' => ']',
        _ => unreachable!("not a delimiter"),
    }
}

/// Build the token tree for a lexed file.
pub fn parse(lx: &Lexed) -> Vec<Tree> {
    let mut pos = 0usize;
    parse_until(&lx.toks, &mut pos, None)
}

fn parse_until(toks: &[Tok], pos: &mut usize, close: Option<char>) -> Vec<Tree> {
    let mut out = Vec::new();
    while *pos < toks.len() {
        let t = &toks[*pos];
        let c = t.text.chars().next().unwrap_or(' ');
        if t.kind == TokKind::Punct && t.text.len() == 1 {
            if Some(c) == close {
                return out;
            }
            if matches!(c, '{' | '(' | '[') {
                let open_line = t.line;
                *pos += 1;
                let children = parse_until(toks, pos, Some(closer(c)));
                let close_line = toks
                    .get(*pos)
                    .map(|x| x.line)
                    .or_else(|| toks.last().map(|x| x.line))
                    .unwrap_or(open_line);
                // Consume the closer if present (absent at EOF).
                if toks
                    .get(*pos)
                    .is_some_and(|x| x.text.len() == 1 && x.text.starts_with(closer(c)))
                {
                    *pos += 1;
                }
                out.push(Tree::Group(Group {
                    delim: c,
                    open_line,
                    close_line,
                    children,
                }));
                continue;
            }
            if matches!(c, '}' | ')' | ']') {
                // Unmatched closer for this level: when we are inside some
                // group it ends the *current* group (tolerant recovery for
                // mismatched delimiters in fuzzed input); at top level it
                // degrades to a leaf.
                if close.is_some() {
                    return out;
                }
                out.push(Tree::Leaf(t.clone()));
                *pos += 1;
                continue;
            }
        }
        out.push(Tree::Leaf(t.clone()));
        *pos += 1;
    }
    out
}

/// One `fn` item found in the tree: its (impl-qualified) name, the body
/// group, and the header tokens (everything between the name and the
/// body — parameters, return type, where clause) flattened for symbol
/// lookups.
#[derive(Debug)]
pub struct FnItem<'t> {
    /// Bare function name.
    pub name: String,
    /// `Type::name` when the fn sits in an `impl Type` (or `impl Trait
    /// for Type`) block, else the bare name.
    pub qual_name: String,
    pub line: u32,
    pub body: &'t Group,
    /// Header tokens (params + return type), flattened.
    pub header: Vec<Tok>,
}

impl FnItem<'_> {
    /// Does `ident` appear anywhere in this function — parameters,
    /// return type, or body (including nested groups)?
    pub fn contains_ident(&self, ident: &str) -> bool {
        self.header
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == ident)
            || group_contains_ident(self.body, ident)
    }

    /// Line range `[start, end]` the function spans.
    pub fn lines(&self) -> (u32, u32) {
        (self.line, self.body.close_line)
    }
}

fn group_contains_ident(g: &Group, ident: &str) -> bool {
    g.children.iter().any(|c| match c {
        Tree::Leaf(t) => t.kind == TokKind::Ident && t.text == ident,
        Tree::Group(g) => group_contains_ident(g, ident),
    })
}

/// Extract every `fn` item (nested ones included) with its impl context.
pub fn functions(trees: &[Tree]) -> Vec<FnItem<'_>> {
    let mut out = Vec::new();
    collect_fns(trees, None, &mut out);
    out
}

fn collect_fns<'t>(trees: &'t [Tree], impl_name: Option<&str>, out: &mut Vec<FnItem<'t>>) {
    let mut i = 0usize;
    while i < trees.len() {
        match &trees[i] {
            Tree::Leaf(t) if t.kind == TokKind::Ident && t.text == "impl" => {
                // Scan to the impl body group, extracting the self-type
                // name: the first ident after `for` if present, else the
                // first ident at angle-depth 0 after `impl`.
                let mut name: Option<String> = None;
                let mut after_for = false;
                let mut angle = 0i32;
                let mut j = i + 1;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Group(g) if g.delim == '{' => {
                            collect_fns(&g.children, name.as_deref(), out);
                            break;
                        }
                        Tree::Leaf(t) => match t.text.as_str() {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            "for" => {
                                after_for = true;
                                name = None;
                            }
                            ";" => break, // `impl Trait for T;` — no body
                            _ if t.kind == TokKind::Ident
                                && angle <= 0
                                && (name.is_none() || after_for) =>
                            {
                                name = Some(t.text.clone());
                                after_for = false;
                            }
                            _ => {}
                        },
                        Tree::Group(_) => {}
                    }
                    j += 1;
                }
                i = j + 1;
            }
            Tree::Leaf(t) if t.kind == TokKind::Ident && t.text == "fn" => {
                // `fn NAME <generics>? ( params ) -> ret { body }`; a `;`
                // before the body means a trait signature, and `fn(` is a
                // function-pointer type, not an item.
                let Some(Tree::Leaf(nm)) = trees.get(i + 1) else {
                    i += 1;
                    continue;
                };
                if nm.kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                let mut header = Vec::new();
                let mut j = i + 2;
                let mut body = None;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Group(g) if g.delim == '{' => {
                            body = Some(g);
                            break;
                        }
                        Tree::Leaf(t) => {
                            if t.text == ";" {
                                break;
                            }
                            header.push(t.clone());
                        }
                        Tree::Group(g) => flatten_into(g, &mut header),
                    }
                    j += 1;
                }
                if let Some(body) = body {
                    out.push(FnItem {
                        name: nm.text.clone(),
                        qual_name: match impl_name {
                            Some(im) => format!("{im}::{}", nm.text),
                            None => nm.text.clone(),
                        },
                        line: t.line,
                        body,
                        header,
                    });
                    // Nested fns and closures inside this body.
                    collect_fns(&body.children, impl_name, out);
                }
                i = j + 1;
            }
            Tree::Group(g) => {
                // mod blocks, trait blocks, etc.
                collect_fns(&g.children, impl_name, out);
                i += 1;
            }
            Tree::Leaf(_) => i += 1,
        }
    }
}

fn flatten_into(g: &Group, out: &mut Vec<Tok>) {
    for c in &g.children {
        match c {
            Tree::Leaf(t) => out.push(t.clone()),
            Tree::Group(g) => flatten_into(g, out),
        }
    }
}
