//! Check 5: the sync-point registry. Every `sched::hit("…")` in library
//! code must be referenced by at least one test (an unreferenced point is
//! dead scaffolding — or worse, an interleaving nobody proves), and every
//! point a test manipulates must exist in the library (or carry the
//! `test:` prefix, which marks points that tests both emit and consume,
//! e.g. the sched self-tests). Library points must themselves not use the
//! `test:` prefix.

use crate::lexer::{in_regions, Lexed, TokKind};
use crate::Finding;
use std::collections::BTreeMap;

/// `SchedCtl` methods whose first argument names a sync point.
const CTL_METHODS: &[&str] = &[
    "pause",
    "pause_label",
    "await_parked",
    "parked",
    "release",
    "resume",
    "hit",
];

#[derive(Default)]
pub struct Registry {
    /// point -> first (file, line) that emits it from lib code.
    pub lib_points: BTreeMap<String, (String, u32)>,
    /// point -> first (file, line) that references it from test code.
    pub test_refs: BTreeMap<String, (String, u32)>,
}

/// Collect one file's contribution to the registry.
pub fn collect(rel_path: &str, lx: &Lexed, test_regions: &[(u32, u32)], reg: &mut Registry) {
    let t = &lx.toks;
    let file_is_test = rel_path.contains("/tests/");
    for i in 0..t.len() {
        if t[i].kind != TokKind::Ident
            || !CTL_METHODS.contains(&t[i].text.as_str())
            || t.get(i + 1).is_none_or(|x| x.text != "(")
            || t.get(i + 2).is_none_or(|x| x.kind != TokKind::Str)
        {
            continue;
        }
        if i > 0 && t[i - 1].text == "fn" {
            continue; // the sched API definitions themselves
        }
        let point = t[i + 2].text.clone();
        let line = t[i].line;
        let in_test = file_is_test || in_regions(test_regions, line);
        if t[i].text == "hit" && !in_test {
            reg.lib_points
                .entry(point)
                .or_insert_with(|| (rel_path.to_string(), line));
        } else if in_test {
            reg.test_refs
                .entry(point)
                .or_insert_with(|| (rel_path.to_string(), line));
        }
        // A non-test `pause`/`release`/… would be a SchedCtl used outside
        // tests; the orphan rules below surface it as an unknown ref is
        // not possible (we only record refs from test context), so it is
        // simply ignored — production code has no SchedCtl.
    }
}

pub fn verdict(reg: &Registry) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (point, (file, line)) in &reg.lib_points {
        if point.starts_with("test:") {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                check: "sync-point-registry",
                msg: format!(
                    "library sync point `{point}` uses the `test:` prefix reserved for \
                     test-emitted points"
                ),
            });
        } else if !reg.test_refs.contains_key(point) {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                check: "sync-point-registry",
                msg: format!(
                    "sync point `{point}` is emitted by library code but referenced by no test \
                     (no pause/await_parked/release anywhere under tests)"
                ),
            });
        }
    }
    for (point, (file, line)) in &reg.test_refs {
        if !point.starts_with("test:") && !reg.lib_points.contains_key(point) {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                check: "sync-point-registry",
                msg: format!(
                    "test references sync point `{point}`, which no library `sched::hit` emits \
                     (rename to `test:{point}` if the test itself emits it)"
                ),
            });
        }
    }
    findings
}
