//! A small, reusable worker pool for morsel-driven parallel scans.
//!
//! The pool owns `threads - 1` long-lived worker threads; the caller of
//! [`WorkerPool::run`] is the remaining executor, so a pool sized `n`
//! really applies `n` threads of execution to a job — and a pool of size 1
//! degenerates to plain inline execution with no thread traffic at all.
//! Jobs are index-addressed: `run(tasks, f)` calls `f(i)` exactly once for
//! every `i in 0..tasks`, distributed over the executors, and returns when
//! all calls have finished. The closure is borrowed, not `'static` — the
//! pool erases its lifetime internally and the completion barrier at the
//! end of `run` is what makes that sound (no worker can touch the closure
//! after `run` returns, because `run` only returns once every task is done
//! and the job slot is cleared under the lock workers re-check through).
//!
//! One job runs at a time: concurrent `run` calls from different threads
//! serialize on an internal mutex, and a **nested** `run` — called from
//! inside a task body, where dispatching would self-deadlock on the
//! single job slot — executes its job inline on the calling thread
//! instead. That is the intended shape for scan parallelism — one query
//! fans out, finishes, and the pool is reused by the next — and it keeps
//! the pool small enough to reason about. A panic inside `f` is caught on
//! the worker, the remaining tasks still run, and the first payload is
//! re-raised on the calling thread after the barrier.
//!
//! ```
//! use anker_util::WorkerPool;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = WorkerPool::new(4);
//! let sum = AtomicU64::new(0);
//! pool.run(100, &|i| {
//!     sum.fetch_add(i as u64, Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 4950);
//! ```

use std::panic::AssertUnwindSafe;
use std::sync::{Condvar, Mutex};

std::thread_local! {
    /// True while this thread is executing a pool task — a nested
    /// [`WorkerPool::run`] from inside a task runs its job inline instead
    /// of dispatching (which would self-deadlock on the single job slot).
    static IN_POOL_TASK_CELL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Thin accessor so call sites read naturally.
struct InPoolTask;
static IN_POOL_TASK: InPoolTask = InPoolTask;
impl InPoolTask {
    fn get(&self) -> bool {
        IN_POOL_TASK_CELL.with(|c| c.get())
    }
    fn set(&self, v: bool) {
        IN_POOL_TASK_CELL.with(|c| c.set(v));
    }
}

/// The closure pointer smuggled to the workers. Soundness rests on the
/// barrier in [`WorkerPool::run`]: the pointee outlives every dereference
/// because `run` does not return until the job is drained and cleared.
#[derive(Clone, Copy)]
struct JobFn(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine)
// and `run`'s completion barrier bounds its lifetime; the raw pointer is
// only ever dereferenced between job publication and the barrier.
unsafe impl Send for JobFn {}

struct ActiveJob {
    f: JobFn,
    /// Generation this job was published under. Executors compare it on
    /// every task pull so a worker that raced past one job's completion
    /// can never pull (and call the stale closure of) the next one.
    generation: u64,
    tasks: usize,
    /// Next task index to hand out.
    next: usize,
    /// Tasks whose `f(i)` call has returned (or unwound).
    done: usize,
    /// First panic payload raised inside `f`, re-raised by `run`.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

#[derive(Default)]
struct PoolState {
    /// Bumped per job so sleeping workers can tell a fresh job from the
    /// one they already drained.
    generation: u64,
    job: Option<ActiveJob>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers sleep here between jobs.
    work_cv: Condvar,
    /// The `run` caller sleeps here until `done == tasks`.
    done_cv: Condvar,
}

/// A fixed-size pool of scan workers. See the module docs.
pub struct WorkerPool {
    shared: std::sync::Arc<PoolShared>,
    /// Serializes concurrent `run` callers (single job slot).
    run_mx: Mutex<()>,
    threads: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// A pool applying `threads` threads of execution to each job (the
    /// caller of [`WorkerPool::run`] counts as one; `threads - 1` worker
    /// threads are spawned). `threads` is clamped to at least 1.
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let shared = std::sync::Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("anker-scan-{i}"))
                    .spawn(move || Self::worker_loop(&shared))
                    .expect("failed to spawn scan worker")
            })
            .collect();
        WorkerPool {
            shared,
            run_mx: Mutex::new(()),
            threads,
            workers,
        }
    }

    /// Threads of execution this pool applies to a job (including the
    /// `run` caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Call `f(i)` once for every `i in 0..tasks`, fanned out over the
    /// pool, and return when all calls have finished. Panics inside `f`
    /// are re-raised here (first payload wins) after all tasks ran.
    pub fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        // Re-entrant call (a task body starting another job on this pool):
        // dispatching would self-deadlock on `run_mx` / the completion
        // barrier, so nested jobs run inline on this thread instead.
        if IN_POOL_TASK.get() {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        let _serialize = self.run_mx.lock().expect("pool mutex poisoned");
        // Erase the borrow's lifetime; the barrier below re-establishes
        // its bounds (no dereference survives past the end of this call).
        // SAFETY(provenance: f, JobFn): only stored behind `JobFn` and
        // dereferenced while the job slot is occupied, which this
        // function outlives.
        let erased: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        let job = JobFn(erased as *const _);
        let generation = {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            debug_assert!(st.job.is_none(), "job slot busy despite run_mx");
            st.generation += 1;
            let generation = st.generation;
            st.job = Some(ActiveJob {
                f: job,
                generation,
                tasks,
                next: 0,
                done: 0,
                panic: None,
            });
            self.shared.work_cv.notify_all();
            generation
        };
        // The caller is an executor too: drain tasks alongside the workers.
        Self::drain(&self.shared, job, generation, tasks);
        // Completion barrier: wait until every handed-out task has
        // returned, then clear the slot so no worker can see (or call)
        // the closure again.
        let panic = {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            while st.job.as_ref().map(|j| j.done < j.tasks).unwrap_or(false) {
                st = self.shared.done_cv.wait(st).expect("pool mutex poisoned");
            }
            let mut job = st.job.take().expect("job present until cleared");
            job.panic.take()
        };
        drop(_serialize);
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Pull and execute tasks of job `generation` until none remain. The
    /// generation check on every pull is load-bearing: once this job
    /// completes, `run` clears the slot and may immediately publish a new
    /// job — pulling from *that* job here would invoke the stale closure
    /// pointer `f` of the finished one.
    fn drain(shared: &PoolShared, f: JobFn, generation: u64, tasks: usize) {
        loop {
            let i = {
                let mut st = shared.state.lock().expect("pool mutex poisoned");
                let Some(job) = st.job.as_mut() else { break };
                if job.generation != generation || job.next >= tasks {
                    break;
                }
                job.next += 1;
                job.next - 1
            };
            // SAFETY(provenance: f, job, generation): this job (same
            // generation) still occupied the slot under the lock, so `run`
            // is still inside its barrier and the pointee is alive.
            let call = std::panic::catch_unwind(AssertUnwindSafe(|| {
                IN_POOL_TASK.set(true);
                unsafe { (*f.0)(i) };
                IN_POOL_TASK.set(false);
            }));
            if call.is_err() {
                IN_POOL_TASK.set(false);
            }
            // Between pulling task `i` and this point the job cannot have
            // been cleared: `run` waits for `done == tasks` and our task
            // is not yet counted.
            let mut st = shared.state.lock().expect("pool mutex poisoned");
            let job = st.job.as_mut().expect("job lives until drained");
            debug_assert_eq!(job.generation, generation, "job outlives its tasks");
            job.done += 1;
            if let Err(payload) = call {
                job.panic.get_or_insert(payload);
            }
            if job.done == job.tasks {
                shared.done_cv.notify_all();
            }
        }
    }

    fn worker_loop(shared: &PoolShared) {
        let mut seen_generation = 0u64;
        loop {
            let (generation, f, tasks) = {
                let mut st = shared.state.lock().expect("pool mutex poisoned");
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.generation != seen_generation {
                        if let Some(job) = st.job.as_ref() {
                            break (st.generation, job.f, job.tasks);
                        }
                    }
                    st = shared.work_cv.wait(st).expect("pool mutex poisoned");
                }
            };
            seen_generation = generation;
            Self::drain(shared, f, generation, tasks);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(1000, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = WorkerPool::new(2);
        for round in 0..20 {
            let count = AtomicUsize::new(0);
            pool.run(round + 1, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), round + 1);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let tid = std::thread::current().id();
        pool.run(4, &|_| assert_eq!(std::thread::current().id(), tid));
    }

    #[test]
    fn borrowed_state_is_visible_after_run() {
        let pool = WorkerPool::new(4);
        let out: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(64, &|i| out[i].store(i * 3, Ordering::Relaxed));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), i * 3);
        }
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = WorkerPool::new(2);
        let survivors = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("task 3 exploded");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(r.is_err(), "panic must reach the caller");
        // All other tasks still ran (the pool does not abandon the job).
        assert_eq!(survivors.load(Ordering::Relaxed), 7);
        // And the pool is still usable.
        let count = AtomicUsize::new(0);
        pool.run(5, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.run(0, &|_| panic!("must not be called"));
    }

    /// Back-to-back jobs must never leak into each other: a worker racing
    /// past one job's completion must not pull (and call the stale
    /// closure of) the next. Rapid-fire tiny jobs maximise the window in
    /// which a worker's drain loop can observe the successor job.
    #[test]
    fn rapid_fire_jobs_never_cross_closures() {
        let pool = WorkerPool::new(4);
        for round in 0..2_000usize {
            let count = AtomicUsize::new(0);
            pool.run(2, &|i| {
                assert!(i < 2, "task index from another job");
                count.fetch_add(round + 1, Ordering::Relaxed);
            });
            assert_eq!(
                count.load(Ordering::Relaxed),
                2 * (round + 1),
                "round {round}: a task ran under the wrong closure"
            );
        }
    }

    /// A nested `run` from inside a task executes inline instead of
    /// deadlocking on the single job slot.
    #[test]
    fn nested_run_from_a_task_runs_inline() {
        let pool = WorkerPool::new(3);
        let inner_total = AtomicUsize::new(0);
        pool.run(3, &|_| {
            pool.run(4, &|_| {
                inner_total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_total.load(Ordering::Relaxed), 12);
    }
}
