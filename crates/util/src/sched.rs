//! Deterministic-interleaving sync points ([`SchedCtl`]).
//!
//! The commit pipeline passes through a handful of *named points*
//! (`sched::hit("commit:latched")`, …). In production nothing is
//! installed and a hit is one relaxed atomic load — effectively free. A
//! test installs a [`SchedCtl`] controller and can then *pause* any point:
//! threads hitting a paused point park until the controller releases them,
//! which turns "run two committers and hope the race window opens" into a
//! replayable, always-reproducible schedule.
//!
//! Points are process-global (the pipeline code cannot thread a handle
//! through every layer), so only **one controller can exist at a time**
//! and tests that use the gate must serialize against each other (take a
//! shared `static` test mutex, or rely on `cargo test -- --test-threads=1`
//! for the file). Dropping the controller releases every parked thread
//! and disarms the gate.
//!
//! Threads can carry a *label* ([`set_label`]) so a pause can target one
//! specific transaction out of several running the same code path
//! ([`SchedCtl::pause_label`]).
//!
//! ```
//! use anker_util::sched;
//!
//! let ctl = sched::SchedCtl::install();
//! ctl.pause("test:demo");
//! let h = std::thread::spawn(|| {
//!     sched::hit("test:demo"); // parks until released
//!     7
//! });
//! ctl.await_parked("test:demo", 1);
//! ctl.release("test:demo", 1);
//! assert_eq!(h.join().unwrap(), 7);
//! drop(ctl); // disarms; later hits are free
//! sched::hit("test:demo");
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Fast-path switch: a hit returns immediately unless a controller is
/// installed.
static ARMED: AtomicBool = AtomicBool::new(false);

struct GateState {
    /// One controller at a time.
    installed: bool,
    /// Paused points: name → pause policy.
    pauses: HashMap<String, Pause>,
    /// Threads currently parked per point.
    parked: HashMap<String, usize>,
}

struct Pause {
    /// Only park threads whose [`set_label`] matches (None = all threads).
    label: Option<String>,
    /// Number of parked/arriving threads allowed through while the pause
    /// stays armed ([`SchedCtl::release`]).
    permits: usize,
}

fn state() -> &'static (Mutex<GateState>, Condvar) {
    static S: OnceLock<(Mutex<GateState>, Condvar)> = OnceLock::new();
    S.get_or_init(|| {
        (
            Mutex::new(GateState {
                installed: false,
                pauses: HashMap::new(),
                parked: HashMap::new(),
            }),
            Condvar::new(),
        )
    })
}

thread_local! {
    static LABEL: std::cell::RefCell<Option<String>> = const { std::cell::RefCell::new(None) };
}

/// Tag the current thread so [`SchedCtl::pause_label`] can target it.
/// `None` clears the tag.
pub fn set_label(label: Option<&str>) {
    LABEL.with(|l| *l.borrow_mut() = label.map(str::to_owned));
}

fn label_matches(want: &Option<String>) -> bool {
    match want {
        None => true,
        Some(w) => LABEL.with(|l| l.borrow().as_deref() == Some(w.as_str())),
    }
}

/// Pass through the named sync point. Free (one relaxed load) unless a
/// controller armed the gate *and* paused this point for this thread.
pub fn hit(point: &'static str) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let (lock, cv) = state();
    let mut g = lock.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let Some(p) = g.pauses.get_mut(point) else {
            return;
        };
        if !label_matches(&p.label) {
            return;
        }
        if p.permits > 0 {
            p.permits -= 1;
            return;
        }
        *g.parked.entry(point.to_owned()).or_insert(0) += 1;
        cv.notify_all();
        g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
        *g.parked.get_mut(point).expect("parked entry exists") -= 1;
        // Re-evaluate: the pause may be gone, or a permit may be ours.
    }
}

/// Controller handle over the process-global gate. At most one exists at
/// a time; dropping it releases all parked threads and disarms the gate.
#[derive(Debug)]
pub struct SchedCtl {
    _priv: (),
}

impl SchedCtl {
    /// Arm the gate.
    ///
    /// # Panics
    /// Panics if another controller is already installed (gate tests must
    /// serialize).
    pub fn install() -> SchedCtl {
        let (lock, _cv) = state();
        let mut g = lock.lock().unwrap_or_else(|e| e.into_inner());
        assert!(
            !g.installed,
            "a SchedCtl is already installed; gate tests must serialize"
        );
        g.installed = true;
        ARMED.store(true, Ordering::Relaxed);
        SchedCtl { _priv: () }
    }

    /// Park every thread that hits `point` until released.
    pub fn pause(&self, point: &str) {
        self.pause_inner(point, None);
    }

    /// Park only threads labelled `label` (see [`set_label`]) at `point`.
    pub fn pause_label(&self, point: &str, label: &str) {
        self.pause_inner(point, Some(label.to_owned()));
    }

    fn pause_inner(&self, point: &str, label: Option<String>) {
        let (lock, _cv) = state();
        let mut g = lock.lock().unwrap_or_else(|e| e.into_inner());
        g.pauses
            .insert(point.to_owned(), Pause { label, permits: 0 });
    }

    /// Block until at least `n` threads are parked at `point`.
    pub fn await_parked(&self, point: &str, n: usize) {
        let (lock, cv) = state();
        let mut g = lock.lock().unwrap_or_else(|e| e.into_inner());
        while g.parked.get(point).copied().unwrap_or(0) < n {
            g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Number of threads currently parked at `point`.
    pub fn parked(&self, point: &str) -> usize {
        let (lock, _cv) = state();
        let g = lock.lock().unwrap_or_else(|e| e.into_inner());
        g.parked.get(point).copied().unwrap_or(0)
    }

    /// Let `n` threads (parked now or arriving later) through `point`
    /// while keeping the pause armed for the ones after.
    pub fn release(&self, point: &str, n: usize) {
        let (lock, cv) = state();
        let mut g = lock.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = g.pauses.get_mut(point) {
            p.permits += n;
        }
        cv.notify_all();
    }

    /// Remove the pause on `point` entirely and wake everything parked
    /// there.
    pub fn resume(&self, point: &str) {
        let (lock, cv) = state();
        let mut g = lock.lock().unwrap_or_else(|e| e.into_inner());
        g.pauses.remove(point);
        cv.notify_all();
    }
}

impl Drop for SchedCtl {
    fn drop(&mut self) {
        let (lock, cv) = state();
        let mut g = lock.lock().unwrap_or_else(|e| e.into_inner());
        g.pauses.clear();
        g.installed = false;
        ARMED.store(false, Ordering::Relaxed);
        cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Gate state is process-global: serialize this module's tests.
    static TEST_MX: Mutex<()> = Mutex::new(());

    #[test]
    fn uninstalled_gate_is_free() {
        let _t = TEST_MX.lock().unwrap_or_else(|e| e.into_inner());
        hit("test:disarmed"); // must not block
    }

    #[test]
    fn pause_parks_until_released() {
        let _t = TEST_MX.lock().unwrap_or_else(|e| e.into_inner());
        let ctl = SchedCtl::install();
        ctl.pause("test:park");
        static STAGE: AtomicUsize = AtomicUsize::new(0);
        STAGE.store(0, Ordering::SeqCst);
        let h = std::thread::spawn(|| {
            STAGE.store(1, Ordering::SeqCst);
            hit("test:park");
            STAGE.store(2, Ordering::SeqCst);
        });
        ctl.await_parked("test:park", 1);
        assert_eq!(STAGE.load(Ordering::SeqCst), 1, "thread is parked");
        ctl.release("test:park", 1);
        h.join().unwrap();
        assert_eq!(STAGE.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn labels_select_which_thread_parks() {
        let _t = TEST_MX.lock().unwrap_or_else(|e| e.into_inner());
        let ctl = SchedCtl::install();
        ctl.pause_label("test:label", "victim");
        // Unlabelled thread sails through.
        let free = std::thread::spawn(|| hit("test:label"));
        free.join().unwrap();
        // Labelled thread parks.
        let parked = std::thread::spawn(|| {
            set_label(Some("victim"));
            hit("test:label");
        });
        ctl.await_parked("test:label", 1);
        ctl.resume("test:label");
        parked.join().unwrap();
    }

    #[test]
    fn drop_releases_everything() {
        let _t = TEST_MX.lock().unwrap_or_else(|e| e.into_inner());
        let ctl = SchedCtl::install();
        ctl.pause("test:drop");
        let h = std::thread::spawn(|| hit("test:drop"));
        ctl.await_parked("test:drop", 1);
        drop(ctl);
        h.join().unwrap();
        // Gate is disarmed again.
        hit("test:drop");
    }
}
