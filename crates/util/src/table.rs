//! Fixed-width ASCII table printer for the reproduction binaries.
//!
//! The `repro_*` binaries print tables shaped like the paper's (e.g. Table 1),
//! so that `EXPERIMENTS.md` can show paper-vs-measured side by side.

/// Incrementally builds an aligned ASCII table.
#[derive(Debug, Default, Clone)]
pub struct TableBuilder {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Create a table with a title line printed above the header.
    pub fn new(title: impl Into<String>) -> Self {
        TableBuilder {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the column headers.
    pub fn header<S: Into<String>>(mut self, cols: impl IntoIterator<Item = S>) -> Self {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Append one data row. Rows shorter than the header are right-padded.
    pub fn row<S: Into<String>>(&mut self, cols: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cols.into_iter().map(Into::into).collect());
        self
    }

    /// Render the table to a string (trailing newline included).
    pub fn render(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        let measure = |widths: &mut [usize], row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for row in &self.rows {
            measure(&mut widths, row);
        }

        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = row.get(i).unwrap_or(&empty);
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align first column, right-align the rest (numbers).
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            while line.ends_with(' ') {
                line.pop();
            }
            line
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header, &widths));
            out.push('\n');
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as comma-separated values (no title), for machine consumption.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        if !self.header.is_empty() {
            out.push_str(
                &self
                    .header
                    .iter()
                    .map(|s| esc(s))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TableBuilder::new("Demo").header(["method", "1 col", "50 col"]);
        t.row(["physical", "108.09", "5382.87"]);
        t.row(["fork", "108.28", "108.28"]);
        let s = t.render();
        assert!(s.starts_with("Demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        // title + header + separator + 2 rows
        assert_eq!(lines.len(), 5);
        // numeric columns right-aligned: both data rows end at same width
        assert_eq!(lines[3].len(), lines[4].len());
        assert!(lines[3].contains("physical"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = TableBuilder::new("x").header(["a", "b"]);
        t.row(["has,comma", "has\"quote"]);
        let csv = t.render_csv();
        assert_eq!(csv, "a,b\n\"has,comma\",\"has\"\"quote\"\n");
    }

    #[test]
    fn empty_table() {
        let t = TableBuilder::new("");
        assert_eq!(t.render(), "");
    }
}
