//! Small statistics helpers for the benchmark/reproduction harness.

/// Summary statistics over a sample of measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Sample standard deviation (0 for n < 2).
    pub stddev: f64,
}

impl Summary {
    /// Compute summary statistics of `samples`. Returns `None` when empty.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Some(Summary {
            n,
            mean,
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            stddev: var.sqrt(),
        })
    }
}

/// Percentile (nearest-rank with linear interpolation) of an already-sorted
/// slice. `p` is in `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&p));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Format a nanosecond quantity with an adaptive unit, e.g. `1.24 ms`.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Format a byte quantity with an adaptive unit, e.g. `16.0 MiB`.
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * KIB;
    const GIB: u64 = 1024 * MIB;
    if bytes >= GIB {
        format!("{:.2} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.1} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.stddev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.5]).unwrap();
        assert_eq!(s.median, 7.5);
        assert_eq!(s.p95, 7.5);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert!((percentile_sorted(&sorted, 50.0) - 5.0).abs() < 1e-12);
        assert!((percentile_sorted(&sorted, 95.0) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(1_240.0), "1.24 us");
        assert_eq!(fmt_ns(1_240_000.0), "1.24 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.50 s");
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(16 * 1024 * 1024), "16.0 MiB");
    }
}
