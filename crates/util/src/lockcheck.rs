//! Runtime lock-order witness for the engine-wide lock hierarchy.
//!
//! The commit pipeline's deadlock freedom rests on a single rule: locks
//! are acquired in ascending **level** order, and same-level locks in
//! ascending **order-key** order (install latches by row key, validation
//! shards by shard index, epoch column maps by epoch timestamp). The
//! declared hierarchy lives in `LOCKS.toml` at the workspace root and is
//! checked two ways:
//!
//! * **Lexically** by `anker-lint` (`cargo run -p anker-lint -- check`),
//!   which flags any function whose textual nesting of acquisitions
//!   inverts the declared order — cheap, total, but blind to cross-
//!   function nesting.
//! * **Dynamically** by this module, behind `cfg(feature = "lockcheck")`:
//!   every acquisition of a witnessed lock records a frame in a
//!   thread-local held-set and panics the moment a thread acquires a
//!   lower level while holding a higher one (or a same-level lock out of
//!   key order), *whether or not* the schedule would actually have
//!   deadlocked this run. Acquisition edges also feed a process-global
//!   graph with cycle detection, so an inversion split across two threads
//!   is caught as soon as both halves have ever been observed.
//!
//! With the feature **off** (the default), [`Held`] is a ZST,
//! [`acquire`] compiles to nothing, and the [`Mutex`]/[`RwLock`]/
//! [`Condvar`] wrappers are transparent shims over `parking_lot` — zero
//! cost on production and ordinary test builds.
//!
//! The class table in [`classes`] mirrors `LOCKS.toml`; `anker-lint`
//! cross-checks the two so they cannot drift apart.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// One class of lock in the engine-wide hierarchy. Levels ascend in
/// acquisition order: a thread holding level `n` may only acquire levels
/// `> n` (and, for `ordered` classes, the same level with a strictly
/// greater order key).
#[derive(Debug)]
pub struct LockClass {
    /// Name as declared in `LOCKS.toml`.
    pub name: &'static str,
    /// Position in the hierarchy (acquire in ascending level order).
    pub level: u16,
    /// Whether several locks of this class may be held at once, provided
    /// their order keys strictly ascend (latches by row key, shards by
    /// index, epoch column maps by epoch timestamp).
    pub ordered: bool,
}

/// The witnessed lock classes, mirroring `LOCKS.toml` (checked against it
/// by `anker-lint`). Leaf locks — ones that never acquire another
/// witnessed lock while held (stats, pools, background-thread stop flags,
/// chain-store shards, the graveyard) — are deliberately absent.
pub mod classes {
    use super::LockClass;

    /// Per-row install latch (the `PENDING` bit CAS in `anker-mvcc`),
    /// ordered by `(table, col, row)` key.
    pub static INSTALL_LATCH: LockClass = LockClass {
        name: "install_latch",
        level: 0,
        ordered: true,
    };
    /// The serialized commit section (`AnkerDb::lock_commit`).
    pub static COMMIT_LOCK: LockClass = LockClass {
        name: "commit_lock",
        level: 1,
        ordered: false,
    };
    /// One validation shard of `RecentCommits`, ordered by shard index.
    pub static VALIDATION_SHARD: LockClass = LockClass {
        name: "validation_shard",
        level: 2,
        ordered: true,
    };
    /// The table registry (`DbInner::tables`).
    pub static TABLES: LockClass = LockClass {
        name: "tables",
        level: 3,
        ordered: false,
    };
    /// The snapshot manager's epoch list.
    pub static SNAP_EPOCHS: LockClass = LockClass {
        name: "snap_epochs",
        level: 4,
        ordered: false,
    };
    /// One epoch's materialised-column map, ordered by epoch timestamp.
    pub static SNAP_EPOCH_COLS: LockClass = LockClass {
        name: "snap_epoch_cols",
        level: 5,
        ordered: true,
    };
    /// The WAL appender (current segment file + sequence).
    pub static WAL_APPENDER: LockClass = LockClass {
        name: "wal_appender",
        level: 6,
        ordered: false,
    };
    /// The WAL's closed-segment list.
    pub static WAL_CLOSED: LockClass = LockClass {
        name: "wal_closed",
        level: 7,
        ordered: false,
    };
    /// The group-commit leader/durable-LSN state.
    pub static WAL_SYNC_STATE: LockClass = LockClass {
        name: "wal_sync_state",
        level: 8,
        ordered: false,
    };
    /// The group-commit leader's second file handle.
    pub static WAL_SYNC_HANDLE: LockClass = LockClass {
        name: "wal_sync_handle",
        level: 9,
        ordered: false,
    };

    /// Every witnessed class, for registry cross-checks.
    pub static ALL: [&LockClass; 10] = [
        &INSTALL_LATCH,
        &COMMIT_LOCK,
        &VALIDATION_SHARD,
        &TABLES,
        &SNAP_EPOCHS,
        &SNAP_EPOCH_COLS,
        &WAL_APPENDER,
        &WAL_CLOSED,
        &WAL_SYNC_STATE,
        &WAL_SYNC_HANDLE,
    ];
}

#[cfg(feature = "lockcheck")]
mod imp {
    use super::LockClass;
    use std::cell::{Cell, RefCell};
    use std::collections::{HashMap, HashSet};
    use std::sync::{Mutex as StdMutex, OnceLock};

    struct Frame {
        class: &'static LockClass,
        order: u64,
        token: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: Cell<u64> = const { Cell::new(0) };
    }

    /// Process-global acquisition graph: `a -> b` means some thread once
    /// acquired class `b` while holding class `a`. Guarded by a plain
    /// `std` mutex so the witness never recurses into itself.
    fn graph() -> &'static StdMutex<HashMap<&'static str, HashSet<&'static str>>> {
        static G: OnceLock<StdMutex<HashMap<&'static str, HashSet<&'static str>>>> =
            OnceLock::new();
        G.get_or_init(|| StdMutex::new(HashMap::new()))
    }

    fn reaches(
        g: &HashMap<&'static str, HashSet<&'static str>>,
        from: &'static str,
        to: &'static str,
    ) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = g.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    /// RAII token for one witnessed acquisition; dropping it removes the
    /// frame from the thread's held-set.
    #[derive(Debug)]
    pub struct Held {
        token: u64,
    }

    /// Record an acquisition of `class` with the given same-level order
    /// key, panicking on any hierarchy violation or acquisition-graph
    /// cycle. Call **before** blocking on the lock itself, so a schedule
    /// that merely *could* deadlock is reported even when it does not.
    pub fn acquire(class: &'static LockClass, order: u64) -> Held {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            for f in held.iter() {
                if f.class.level > class.level {
                    panic!(
                        "lock-order violation: acquiring `{}` (level {}) while holding `{}` \
                         (level {}); LOCKS.toml requires ascending levels",
                        class.name, class.level, f.class.name, f.class.level
                    );
                }
                if f.class.level == class.level {
                    assert!(
                        std::ptr::eq(f.class, class) && class.ordered,
                        "lock-order violation: acquiring `{}` while holding same-level `{}` \
                         (class is not `ordered`)",
                        class.name,
                        f.class.name
                    );
                    assert!(
                        f.order < order,
                        "lock-order violation: acquiring `{}` with order key {} while \
                         holding key {} (same-level acquisitions need strictly ascending keys)",
                        class.name,
                        order,
                        f.order
                    );
                }
            }
            if let Some(top) = held.last() {
                if !std::ptr::eq(top.class, class) {
                    let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
                    g.entry(top.class.name).or_default().insert(class.name);
                    for f in held.iter() {
                        if !std::ptr::eq(f.class, class) && reaches(&g, class.name, f.class.name) {
                            panic!(
                                "lock acquisition cycle: `{}` is reachable from `{}` in the \
                                 global acquisition graph, and this thread holds `{}` while \
                                 acquiring `{}`",
                                f.class.name, class.name, f.class.name, class.name
                            );
                        }
                    }
                }
            }
            let token = NEXT_TOKEN.with(|t| {
                let v = t.get();
                t.set(v + 1);
                v
            });
            held.push(Frame {
                class,
                order,
                token,
            });
            Held { token }
        })
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut held = h.borrow_mut();
                // Guards may be dropped out of stack order (the commit
                // path releases shard guards before its install latches),
                // so remove by token rather than popping.
                if let Some(i) = held.iter().rposition(|f| f.token == self.token) {
                    held.remove(i);
                }
            });
        }
    }
}

#[cfg(not(feature = "lockcheck"))]
mod imp {
    use super::LockClass;

    /// RAII token for one witnessed acquisition (ZST with the `lockcheck`
    /// feature off; holding a `Vec<Held>` never allocates).
    #[derive(Debug)]
    pub struct Held;

    /// No-op with the `lockcheck` feature off.
    #[inline(always)]
    pub fn acquire(_class: &'static LockClass, _order: u64) -> Held {
        Held
    }
}

pub use imp::{acquire, Held};

/// A `parking_lot::Mutex` that witnesses every acquisition against the
/// declared hierarchy (free when the `lockcheck` feature is off).
pub struct Mutex<T> {
    class: &'static LockClass,
    order: u64,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A mutex of `class` with same-level order key `order` (use 0 for
    /// classes that are never held twice by one thread).
    pub fn new(class: &'static LockClass, order: u64, value: T) -> Mutex<T> {
        Mutex {
            class,
            order,
            inner: parking_lot::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        // Witness first: a would-be deadlock must panic even on schedules
        // where the inner lock happens to be free.
        let held = acquire(self.class, self.order);
        MutexGuard {
            lock: self,
            inner: self.inner.lock(),
            held: Some(held),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lockcheck::Mutex({})", self.class.name)
    }
}

/// Guard of a [`Mutex`]; releases the witness frame together with the
/// lock.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: parking_lot::MutexGuard<'a, T>,
    held: Option<Held>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`MutexGuard`]: the witness frame is
/// released for the duration of the wait (the lock genuinely is) and
/// re-checked on wakeup.
pub struct Condvar {
    inner: parking_lot::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            inner: parking_lot::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        guard.held = None;
        self.inner.wait(&mut guard.inner);
        guard.held = Some(acquire(guard.lock.class, guard.lock.order));
    }
}

/// A `parking_lot::RwLock` that witnesses every acquisition (read and
/// write acquisitions participate in the hierarchy identically).
pub struct RwLock<T> {
    class: &'static LockClass,
    order: u64,
    inner: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(class: &'static LockClass, order: u64, value: T) -> RwLock<T> {
        RwLock {
            class,
            order,
            inner: parking_lot::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let held = acquire(self.class, self.order);
        RwLockReadGuard {
            inner: self.inner.read(),
            _held: held,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let held = acquire(self.class, self.order);
        RwLockWriteGuard {
            inner: self.inner.write(),
            _held: held,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lockcheck::RwLock({})", self.class.name)
    }
}

pub struct RwLockReadGuard<'a, T> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
    _held: Held,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    _held: Held,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(all(test, feature = "lockcheck"))]
mod tests {
    use super::classes;
    use super::*;

    fn catches<F: FnOnce()>(f: F) -> String {
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).expect_err("must panic");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn ascending_levels_pass() {
        let a = Mutex::new(&classes::COMMIT_LOCK, 0, ());
        let b = Mutex::new(&classes::WAL_APPENDER, 0, ());
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn descending_levels_panic() {
        let msg = catches(|| {
            let hi = Mutex::new(&classes::WAL_APPENDER, 0, ());
            let lo = Mutex::new(&classes::COMMIT_LOCK, 0, ());
            let _ghi = hi.lock();
            let _glo = lo.lock();
        });
        assert!(msg.contains("lock-order violation"), "got: {msg}");
    }

    #[test]
    fn same_level_needs_ascending_keys() {
        let s0 = Mutex::new(&classes::VALIDATION_SHARD, 0, ());
        let s1 = Mutex::new(&classes::VALIDATION_SHARD, 1, ());
        {
            let _g0 = s0.lock();
            let _g1 = s1.lock();
        }
        let msg = catches(|| {
            let _g1 = s1.lock();
            let _g0 = s0.lock();
        });
        assert!(msg.contains("strictly ascending keys"), "got: {msg}");
    }

    #[test]
    fn unordered_class_rejects_same_level_reacquire() {
        let a = Mutex::new(&classes::TABLES, 0, ());
        let b = Mutex::new(&classes::TABLES, 1, ());
        let msg = catches(|| {
            let _ga = a.lock();
            let _gb = b.lock();
        });
        assert!(msg.contains("not `ordered`"), "got: {msg}");
    }

    #[test]
    fn out_of_stack_order_release_is_fine() {
        let a = acquire(&classes::INSTALL_LATCH, 1);
        let b = acquire(&classes::VALIDATION_SHARD, 0);
        drop(a); // released before b, like shard guards vs latches
        drop(b);
        let _c = acquire(&classes::COMMIT_LOCK, 0);
    }

    #[test]
    fn rwlock_read_participates() {
        let t = RwLock::new(&classes::TABLES, 0, ());
        let w = Mutex::new(&classes::WAL_APPENDER, 0, ());
        let _gr = t.read();
        let _gw = w.lock();
        drop(_gw);
        drop(_gr);
        let msg = catches(|| {
            let _gw = w.lock();
            let _gr = t.read();
        });
        assert!(msg.contains("lock-order violation"), "got: {msg}");
    }
}
