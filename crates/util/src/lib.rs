//! Shared utilities for the AnKerDB workspace.
//!
//! Deliberately tiny: a fast non-cryptographic hasher (so we do not need an
//! external hashing crate), small statistics helpers for the benchmark
//! harness, and a fixed-width table printer used by the `repro_*` binaries to
//! print paper-style result tables.

pub mod fxhash;
pub mod stats;
pub mod table;

pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use stats::Summary;
pub use table::TableBuilder;
