//! Shared utilities for the AnKerDB workspace.
//!
//! Deliberately tiny: a fast non-cryptographic hasher (so we do not need an
//! external hashing crate), small statistics helpers for the benchmark
//! harness, a fixed-width table printer used by the `repro_*` binaries to
//! print paper-style result tables, the reusable [`WorkerPool`] behind
//! morsel-parallel snapshot scans, the [`sched`] deterministic-
//! interleaving sync points the commit-pipeline race tests drive, and the
//! [`lockcheck`] lock-order witness (active behind the `lockcheck`
//! feature) that dynamically enforces the hierarchy in `LOCKS.toml`.
//!
//! ## Example
//!
//! ```
//! use anker_util::{FxHashMap, Summary, TableBuilder};
//!
//! let stats = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
//! assert_eq!(stats.n, 4);
//! assert_eq!(stats.mean, 2.5);
//!
//! let mut map: FxHashMap<&str, u64> = FxHashMap::default();
//! map.insert("rows", 42);
//! assert_eq!(map["rows"], 42);
//!
//! let mut table = TableBuilder::new("Throughput").header(["mode", "txn/s"]);
//! table.row(["heterogeneous", "51000"]);
//! assert!(table.render().contains("heterogeneous"));
//! ```

pub mod fxhash;
pub mod lockcheck;
pub mod pool;
pub mod sched;
pub mod stats;
pub mod table;

pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use pool::WorkerPool;
pub use sched::SchedCtl;
pub use stats::Summary;
pub use table::TableBuilder;
