//! The FxHash algorithm used by rustc, reimplemented locally.
//!
//! FxHash is a very fast, low-quality multiplicative hash. It is the right
//! choice for the hot per-page and per-row hash-map lookups inside the VM
//! simulator and the MVCC version store, where keys are small integers fully
//! under our control (no HashDoS exposure).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc implementation
/// (64-bit variant), i.e. `2^64 / golden_ratio`.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Streaming state of the FxHash algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hash a single `u64` with FxHash. Handy for sharding decisions.
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    (x.rotate_left(5)).wrapping_mul(SEED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("hello"), hash_of("hello"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a quality test, just a sanity check that consecutive integers
        // (our dominant key distribution) do not collide.
        let mut seen = HashSet::new();
        for i in 0u64..10_000 {
            assert!(seen.insert(hash_of(i)), "collision at {i}");
        }
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn byte_slices_any_length() {
        // Exercise the chunked `write` path across all remainder lengths.
        // Bytes start at 1: FxHash zero-pads the trailing partial word, so a
        // slice of zero bytes intentionally hashes like the empty slice.
        let data: Vec<u8> = (1..=255).collect();
        let mut hashes = HashSet::new();
        for len in 0..32 {
            let mut h = FxHasher::default();
            h.write(&data[..len]);
            hashes.insert(h.finish());
        }
        assert_eq!(hashes.len(), 32);
    }
}
