//! Virtual memory areas (the simulated `vm_area_struct`).

use crate::file::FileInner;
use std::sync::Arc;

/// Page protection of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prot {
    /// Reads allowed. All mappings in this simulator are readable.
    pub read: bool,
    /// Writes allowed.
    pub write: bool,
}

impl Prot {
    /// Read-only protection (`PROT_READ`).
    pub const READ: Prot = Prot {
        read: true,
        write: false,
    };
    /// Read-write protection (`PROT_READ | PROT_WRITE`).
    pub const READ_WRITE: Prot = Prot {
        read: true,
        write: true,
    };
}

/// Sharing semantics of a mapping (`MAP_PRIVATE` / `MAP_SHARED`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Share {
    /// Copy-on-write private mapping.
    Private,
    /// Writes go through to the backing object.
    Shared,
}

/// What a VMA maps.
#[derive(Clone)]
pub enum Backing {
    /// Anonymous memory (`MAP_ANONYMOUS`).
    Anon,
    /// A main-memory file at the given byte offset (page aligned).
    File { file: Arc<FileInner>, offset: u64 },
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backing::Anon => write!(f, "Anon"),
            Backing::File { offset, .. } => write!(f, "File{{offset: {offset:#x}}}"),
        }
    }
}

/// A contiguous virtual memory area, the simulated `vm_area_struct`.
#[derive(Debug, Clone)]
pub struct Vma {
    /// First byte of the area (page aligned).
    pub start: u64,
    /// One past the last byte (page aligned).
    pub end: u64,
    pub prot: Prot,
    pub share: Share,
    pub backing: Backing,
}

impl Vma {
    /// Length of the area in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True if the area is empty (never stored in the tree).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether `addr` falls inside the area.
    pub fn contains(&self, addr: u64) -> bool {
        self.start <= addr && addr < self.end
    }

    /// Backing of the sub-area starting `delta` bytes into this VMA.
    pub(crate) fn backing_at(&self, delta: u64) -> Backing {
        match &self.backing {
            Backing::Anon => Backing::Anon,
            Backing::File { file, offset } => Backing::File {
                file: Arc::clone(file),
                offset: offset + delta,
            },
        }
    }

    /// Can `self` (ending where `next` starts) merge with `next`?
    /// Requires identical protection/sharing and, for file mappings, the
    /// same file with contiguous offsets. Private anonymous areas merge
    /// freely, like in Linux.
    pub(crate) fn can_merge_with(&self, next: &Vma) -> bool {
        if self.end != next.start || self.prot != next.prot || self.share != next.share {
            return false;
        }
        match (&self.backing, &next.backing) {
            (Backing::Anon, Backing::Anon) => true,
            (
                Backing::File {
                    file: f1,
                    offset: o1,
                },
                Backing::File {
                    file: f2,
                    offset: o2,
                },
            ) => Arc::ptr_eq(f1, f2) && o1 + self.len() == *o2,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anon(start: u64, end: u64, prot: Prot) -> Vma {
        Vma {
            start,
            end,
            prot,
            share: Share::Private,
            backing: Backing::Anon,
        }
    }

    #[test]
    fn merge_rules_anon() {
        let a = anon(0, 4096, Prot::READ_WRITE);
        let b = anon(4096, 8192, Prot::READ_WRITE);
        assert!(a.can_merge_with(&b));
        let c = anon(4096, 8192, Prot::READ);
        assert!(!a.can_merge_with(&c), "different protection");
        let d = anon(8192, 12288, Prot::READ_WRITE);
        assert!(!a.can_merge_with(&d), "not adjacent");
    }

    #[test]
    fn contains_and_len() {
        let v = anon(4096, 12288, Prot::READ);
        assert_eq!(v.len(), 8192);
        assert!(v.contains(4096));
        assert!(v.contains(12287));
        assert!(!v.contains(12288));
        assert!(!v.contains(0));
    }
}
