//! Simulated physical memory: a chunked frame arena with reference counts.
//!
//! Frames are fixed-size pages carved out of large, 8-byte-aligned chunks.
//! Chunks are allocated on demand and **never move or shrink** until the
//! kernel is dropped, so raw frame pointers handed out to [`crate::ResolvedPage`]
//! (see [`crate::page`]) stay valid for the kernel's lifetime.
//!
//! Reference counting: a frame's count is the number of PTEs referencing it
//! plus one if it is owned by a main-memory file. When the count drops to
//! zero the frame returns to the free list and is zeroed on re-allocation.

use crate::error::{Result, VmError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Identifier of a physical frame (page) in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u32);

/// One contiguous slab of frames.
struct Chunk {
    /// Raw pointer to the chunk's backing storage (leaked `Box<[u64]>`,
    /// reclaimed in `Drop for PhysMem`). `u64` storage guarantees 8-byte
    /// alignment for atomic word access.
    base: *mut u8,
    words: usize,
    /// One refcount per frame in this chunk.
    refcounts: Box<[AtomicU32]>,
}

// SAFETY: the raw pointer refers to stable, heap-allocated storage; all
// mutation of frame contents by callers goes through atomic word operations
// (see `crate::page::ResolvedPage`) or is externally synchronised.
unsafe impl Send for Chunk {}
unsafe impl Sync for Chunk {}

/// The simulated machine's physical memory.
pub struct PhysMem {
    page_size: usize,
    frames_per_chunk: usize,
    /// Pre-sized directory of chunk slots; slots are initialised on demand.
    chunks: Box<[OnceLock<Chunk>]>,
    grow_lock: Mutex<()>,
    n_chunks: AtomicUsize,
    free: Mutex<Vec<FrameId>>,
    next_fresh: AtomicU32,
    allocated: AtomicU64,
    freed: AtomicU64,
}

impl std::fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysMem")
            .field("page_size", &self.page_size)
            .field("frames_in_use", &self.frames_in_use())
            .finish()
    }
}

impl PhysMem {
    /// Create physical memory of at most `max_bytes`, carved into pages of
    /// `page_size` bytes. `page_size` must be a power of two and a multiple
    /// of 8.
    pub fn new(page_size: usize, max_bytes: usize) -> PhysMem {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(page_size >= 64, "page size too small");
        assert_eq!(page_size % 8, 0);
        // Chunks of at least 4 MiB and at least one page.
        let chunk_bytes = page_size.max(4 << 20);
        let frames_per_chunk = chunk_bytes / page_size;
        let n_slots = max_bytes.div_ceil(chunk_bytes).max(1);
        let chunks = (0..n_slots).map(|_| OnceLock::new()).collect::<Vec<_>>();
        PhysMem {
            page_size,
            frames_per_chunk,
            chunks: chunks.into_boxed_slice(),
            grow_lock: Mutex::new(()),
            n_chunks: AtomicUsize::new(0),
            free: Mutex::new(Vec::new()),
            next_fresh: AtomicU32::new(0),
            allocated: AtomicU64::new(0),
            freed: AtomicU64::new(0),
        }
    }

    /// The frame size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of frames currently referenced (allocated minus freed).
    pub fn frames_in_use(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed) - self.freed.load(Ordering::Relaxed)
    }

    /// Total frames ever allocated.
    pub fn frames_allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Total frames freed back to the pool.
    pub fn frames_freed(&self) -> u64 {
        self.freed.load(Ordering::Relaxed)
    }

    fn chunk_of(&self, frame: FrameId) -> (&Chunk, usize) {
        let idx = frame.0 as usize / self.frames_per_chunk;
        let within = frame.0 as usize % self.frames_per_chunk;
        let chunk = self.chunks[idx]
            .get()
            .expect("frame refers to unallocated chunk");
        (chunk, within)
    }

    /// Raw pointer to the first byte of `frame`. Stable until the kernel is
    /// dropped.
    pub(crate) fn frame_ptr(&self, frame: FrameId) -> *mut u8 {
        let (chunk, within) = self.chunk_of(frame);
        debug_assert!((within + 1) * self.page_size <= chunk.words * 8);
        // SAFETY(provenance: chunk, bounds: within, page_size): the chunk
        // allocation is stable for the arena's life and `within` is in
        // range for it by construction.
        unsafe { chunk.base.add(within * self.page_size) }
    }

    fn ensure_chunk(&self, idx: usize) -> Result<()> {
        if idx >= self.chunks.len() {
            return Err(VmError::OutOfMemory);
        }
        if self.chunks[idx].get().is_some() {
            return Ok(());
        }
        let _g = self.grow_lock.lock();
        if self.chunks[idx].get().is_some() {
            return Ok(());
        }
        let words = self.frames_per_chunk * self.page_size / 8;
        let storage: Box<[u64]> = vec![0u64; words].into_boxed_slice();
        let base = Box::into_raw(storage) as *mut u64 as *mut u8;
        let refcounts = (0..self.frames_per_chunk)
            .map(|_| AtomicU32::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let chunk = Chunk {
            base,
            words,
            refcounts,
        };
        self.chunks[idx]
            .set(chunk)
            .unwrap_or_else(|_| unreachable!("guarded by grow_lock"));
        self.n_chunks.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Allocate a zeroed frame with refcount 1.
    pub fn alloc(&self) -> Result<FrameId> {
        let frame = if let Some(f) = self.free.lock().pop() {
            f
        } else {
            let raw = self.next_fresh.fetch_add(1, Ordering::Relaxed);
            let idx = raw as usize / self.frames_per_chunk;
            self.ensure_chunk(idx)?;
            FrameId(raw)
        };
        // Zero the page word-wise; new owner has exclusive access.
        let ptr = self.frame_ptr(frame) as *mut u64;
        for i in 0..(self.page_size / 8) {
            // SAFETY(provenance: ptr, frame, bounds: page_size): in-bounds
            // of the frame, exclusively owned until published via a PTE.
            unsafe { ptr.add(i).write(0) };
        }
        let (chunk, within) = self.chunk_of(frame);
        let prev = chunk.refcounts[within].swap(1, Ordering::Relaxed);
        debug_assert_eq!(prev, 0, "allocated frame had live references");
        self.allocated.fetch_add(1, Ordering::Relaxed);
        Ok(frame)
    }

    /// Increment the reference count of `frame`.
    pub fn incref(&self, frame: FrameId) {
        let (chunk, within) = self.chunk_of(frame);
        let prev = chunk.refcounts[within].fetch_add(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "incref on free frame");
    }

    /// Decrement the reference count; frees the frame when it reaches zero.
    pub fn decref(&self, frame: FrameId) {
        let (chunk, within) = self.chunk_of(frame);
        // ORDERING: AcqRel — the Release half publishes this owner's last
        // writes to the frame before the count can reach zero; the Acquire
        // half makes the freeing thread (prev == 1) see every other
        // owner's writes before the frame is zeroed and recycled.
        let prev = chunk.refcounts[within].fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "decref on free frame");
        if prev == 1 {
            self.freed.fetch_add(1, Ordering::Relaxed);
            self.free.lock().push(frame);
        }
    }

    /// Current reference count of `frame`.
    pub fn refcount(&self, frame: FrameId) -> u32 {
        let (chunk, within) = self.chunk_of(frame);
        // ORDERING: Acquire pairs with the AcqRel refcount RMWs so an
        // observed count is no older than the ownership changes it implies.
        chunk.refcounts[within].load(Ordering::Acquire)
    }

    /// Copy the contents of frame `src` into frame `dst` using atomic word
    /// loads and stores (safe against concurrent atomic readers of `src`).
    pub fn copy_frame(&self, src: FrameId, dst: FrameId) {
        let s = self.frame_ptr(src) as *const AtomicU64;
        let d = self.frame_ptr(dst) as *const AtomicU64;
        let words = self.page_size / 8;
        for i in 0..words {
            // SAFETY(provenance: s, d, bounds: words): both frame pointers
            // are valid, 8-aligned, and in bounds; access is atomic so
            // racing readers observe word-level values.
            unsafe {
                let v = (*s.add(i)).load(Ordering::Relaxed);
                (*d.add(i)).store(v, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for PhysMem {
    fn drop(&mut self) {
        for slot in self.chunks.iter() {
            if let Some(chunk) = slot.get() {
                // SAFETY(provenance: chunk, bounds: words): reconstructing
                // the Box leaked at chunk creation, exactly once, from its
                // recorded base and length.
                unsafe {
                    let slice =
                        std::ptr::slice_from_raw_parts_mut(chunk.base as *mut u64, chunk.words);
                    drop(Box::from_raw(slice));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroes_and_recycles() {
        let pm = PhysMem::new(4096, 64 << 20);
        let f = pm.alloc().unwrap();
        let ptr = pm.frame_ptr(f) as *mut u64;
        // SAFETY(provenance: f, ptr): `f` (and later `g`) was just
        // allocated and nothing else references it, so `frame_ptr`
        // addresses a live, exclusively owned, u64-aligned frame.
        unsafe {
            assert_eq!(ptr.read(), 0);
            ptr.write(0xdead_beef);
        }
        pm.decref(f);
        assert_eq!(pm.frames_in_use(), 0);
        let g = pm.alloc().unwrap();
        assert_eq!(g, f, "free list should recycle");
        // SAFETY(provenance: g, frame_ptr): as above — `g` is freshly
        // allocated and exclusively owned.
        unsafe { assert_eq!((pm.frame_ptr(g) as *mut u64).read(), 0) };
    }

    #[test]
    fn refcounting() {
        let pm = PhysMem::new(4096, 64 << 20);
        let f = pm.alloc().unwrap();
        assert_eq!(pm.refcount(f), 1);
        pm.incref(f);
        assert_eq!(pm.refcount(f), 2);
        pm.decref(f);
        assert_eq!(pm.refcount(f), 1);
        assert_eq!(pm.frames_in_use(), 1);
        pm.decref(f);
        assert_eq!(pm.frames_in_use(), 0);
    }

    #[test]
    fn copy_frame_copies_contents() {
        let pm = PhysMem::new(4096, 64 << 20);
        let a = pm.alloc().unwrap();
        let b = pm.alloc().unwrap();
        // SAFETY(provenance: a, b): `a` and `b` are freshly allocated
        // frames owned solely by this test; writes stay within one 4 KiB
        // frame (512 u64s).
        unsafe {
            let pa = pm.frame_ptr(a) as *mut u64;
            for i in 0..512 {
                pa.add(i).write(i as u64 * 3 + 1);
            }
        }
        pm.copy_frame(a, b);
        // SAFETY(provenance: a, b): same frames as above, still owned by
        // this test and in-bounds.
        unsafe {
            let pb = pm.frame_ptr(b) as *mut u64;
            for i in 0..512 {
                assert_eq!(pb.add(i).read(), i as u64 * 3 + 1);
            }
        }
    }

    #[test]
    fn exhaustion_reported() {
        // 1 chunk (4 MiB) of capacity => 1024 frames of 4 KiB.
        let pm = PhysMem::new(4096, 1);
        for _ in 0..1024 {
            pm.alloc().unwrap();
        }
        assert_eq!(pm.alloc(), Err(VmError::OutOfMemory));
    }

    #[test]
    fn spans_multiple_chunks() {
        let pm = PhysMem::new(4096, 16 << 20);
        let mut frames = Vec::new();
        for _ in 0..2048 {
            frames.push(pm.alloc().unwrap());
        }
        // Write a distinct value into each and read back.
        for (i, &f) in frames.iter().enumerate() {
            // SAFETY(provenance: f, frames): every frame in `frames` is
            // live (never freed here) and distinct, so each one-word write
            // is to exclusively owned, mapped memory.
            unsafe { (pm.frame_ptr(f) as *mut u64).write(i as u64) };
        }
        for (i, &f) in frames.iter().enumerate() {
            // SAFETY(provenance: f, frames): as above, reads only.
            unsafe { assert_eq!((pm.frame_ptr(f) as *mut u64).read(), i as u64) };
        }
    }

    #[test]
    fn concurrent_alloc_free() {
        let pm = std::sync::Arc::new(PhysMem::new(4096, 256 << 20));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pm = pm.clone();
                s.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..2000 {
                        held.push(pm.alloc().unwrap());
                        if i % 3 == 0 {
                            pm.decref(held.swap_remove(0));
                        }
                    }
                    for f in held {
                        pm.decref(f);
                    }
                });
            }
        });
        assert_eq!(pm.frames_in_use(), 0);
    }
}
