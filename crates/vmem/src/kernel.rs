//! The simulated kernel: configuration, physical memory, cost accounting,
//! and factories for address spaces and main-memory files.

use crate::cost::{CostModel, Counters, KernelStats, VirtualClock};
use crate::file::{FileInner, MemFile};
use crate::phys::PhysMem;
use crate::space::Space;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Construction parameters of a simulated kernel.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Page size in bytes (power of two, multiple of 8). 4 KiB by default;
    /// 2 MiB models huge pages for the §3.3 granularity ablation.
    pub page_size: usize,
    /// Upper bound on simulated physical memory.
    pub max_phys_bytes: usize,
    /// Virtual-time cost model (see [`CostModel`]).
    pub cost: CostModel,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            page_size: 4096,
            max_phys_bytes: 12 << 30,
            cost: CostModel::default(),
        }
    }
}

pub(crate) struct KernelState {
    pub(crate) phys: Arc<PhysMem>,
    pub(crate) cost: CostModel,
    pub(crate) clock: VirtualClock,
    pub(crate) counters: Counters,
    next_file_id: AtomicU64,
    next_space_id: AtomicU64,
}

/// Handle to a simulated kernel. Cheap to clone; all clones share the same
/// physical memory, cost model, and statistics.
#[derive(Clone)]
pub struct Kernel {
    pub(crate) state: Arc<KernelState>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("page_size", &self.page_size())
            .field("frames_in_use", &self.state.phys.frames_in_use())
            .finish()
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new(KernelConfig::default())
    }
}

impl Kernel {
    /// Boot a simulated kernel.
    pub fn new(config: KernelConfig) -> Kernel {
        let phys = Arc::new(PhysMem::new(config.page_size, config.max_phys_bytes));
        Kernel {
            state: Arc::new(KernelState {
                phys,
                cost: config.cost,
                clock: VirtualClock::default(),
                counters: Counters::default(),
                next_file_id: AtomicU64::new(1),
                next_space_id: AtomicU64::new(1),
            }),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.state.phys.page_size()
    }

    /// The active cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.state.cost
    }

    /// Create a fresh, empty address space ("process").
    pub fn create_space(&self) -> Space {
        let id = self.state.next_space_id.fetch_add(1, Ordering::Relaxed);
        Space::new_empty(self.clone(), id)
    }

    /// Create a main-memory file of `n_pages` page slots.
    pub fn create_file(&self, n_pages: u64) -> MemFile {
        let id = self.state.next_file_id.fetch_add(1, Ordering::Relaxed);
        MemFile {
            kernel: self.clone(),
            inner: Arc::new(FileInner::new(id, Arc::clone(&self.state.phys), n_pages)),
        }
    }

    /// Snapshot of all counters and the virtual clock.
    pub fn stats(&self) -> KernelStats {
        let mut s = self.state.counters.snapshot(&self.state.clock);
        s.frames_allocated = self.state.phys.frames_allocated();
        s.frames_freed = self.state.phys.frames_freed();
        s
    }

    /// Virtual nanoseconds elapsed so far.
    pub fn virtual_ns(&self) -> u64 {
        self.state.clock.now_ns()
    }

    /// Number of physical frames currently in use.
    pub fn frames_in_use(&self) -> u64 {
        self.state.phys.frames_in_use()
    }

    /// Charge the cost of delivering a SIGSEGV to a user-space handler and
    /// returning from it. Rewired snapshotting's manual copy-on-write pays
    /// this on every first write to a protected page (paper §4.1.4: "a
    /// signal handler is necessary to detect the write to a page").
    pub fn charge_signal_delivery(&self) {
        self.state.clock.charge(self.state.cost.signal_delivery);
    }

    /// Charge one plain syscall (entry/exit only).
    pub(crate) fn charge_syscall(&self) {
        self.state.clock.charge(self.state.cost.syscall_entry);
    }

    /// Charge one user-space page copy (a `memcpy` of one page, or a file
    /// page duplication). Used by snapshotting techniques that copy data
    /// outside the fault handler — physical snapshotting and rewiring's
    /// manual COW.
    pub fn charge_memcpy_page(&self) {
        self.state
            .counters
            .pages_copied
            .fetch_add(1, Ordering::Relaxed);
        self.state
            .clock
            .charge(self.state.cost.page_copy_for(self.page_size()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_basics() {
        let k = Kernel::default();
        assert_eq!(k.page_size(), 4096);
        assert_eq!(k.frames_in_use(), 0);
        let f = k.create_file(10);
        assert_eq!(f.n_pages(), 10);
        let s1 = k.create_space();
        let s2 = k.create_space();
        assert_ne!(s1.id(), s2.id());
    }

    #[test]
    fn huge_page_kernel() {
        let k = Kernel::new(KernelConfig {
            page_size: 2 << 20,
            max_phys_bytes: 64 << 20,
            cost: CostModel::default(),
        });
        assert_eq!(k.page_size(), 2 << 20);
    }

    #[test]
    fn stats_track_clock() {
        let k = Kernel::default();
        let before = k.stats();
        k.charge_signal_delivery();
        let after = k.stats();
        assert_eq!(
            after.delta_since(&before).virtual_ns,
            k.cost_model().signal_delivery as u64
        );
    }
}
