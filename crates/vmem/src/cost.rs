//! Virtual cost model and accounting for the simulated kernel.
//!
//! The paper measures kernel-level work: system-call entry, VMA copies and
//! splits, PTE copies, page faults, and page copies. The simulator does real
//! work *proportional* to the same quantities (B-tree inserts per VMA, hash
//! inserts per PTE, word-wise page copies), but the constants of a user-space
//! simulator differ from a real kernel. To reproduce the *absolute shape* of
//! Table 1 and Figure 5, every simulated kernel operation additionally
//! charges calibrated virtual nanoseconds to a per-kernel [`VirtualClock`].
//!
//! # Calibration
//!
//! Constants are fitted against the paper's measurements on a 200 MB column
//! (51 200 pages of 4 KiB), Table 1 and Figure 5:
//!
//! * **Physical snapshotting**: 108.09 ms / 200 MB → ~2.1 µs per 4 KiB page,
//!   split between the destination's populate fault (`page_fault`) and the
//!   copy itself (`page_copy`).
//! * **Fork-based**: 108.28 ms for a 50-column table → ~40-45 ns per copied
//!   PTE (`pte_copy`), dominating VMA copy cost.
//! * **Rewiring**: 1.22 ms at 995 VMAs and 169.28 ms at 51 200 VMAs per
//!   column → per-`mmap` cost grows with the number of VMAs in the space:
//!   `mmap_base + mmap_per_existing_vma · nVMAs + mmap_per_page · pages`.
//!   Fitting both points gives ≈1.1 µs base and ≈0.04 ns per existing VMA;
//!   the per-page term (0.3 ns) reproduces the 0-writes row (≈16 µs vs the
//!   paper's 20 µs for one column).
//! * **`vm_snapshot`**: 68× faster than rewiring at 51 200 modified pages
//!   (Fig. 5a) → ≈2.5 ms for 51 200 PTEs → ~45 ns per PTE, consistent with
//!   the fork fit.
//! * **Writes to a snapshotted page** (Fig. 5b): kernel COW ≈2-3 µs
//!   (`page_fault` + `page_copy`); manual user-space COW ≈18-21 µs
//!   (`signal_delivery` + page copy + rewiring `mmap` + bookkeeping).

use std::sync::atomic::{AtomicU64, Ordering};

/// Calibrated virtual-time constants, all in nanoseconds (see module docs).
///
/// Page-copy costs are specified per 4 KiB and scaled by the kernel's actual
/// page size.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed cost of entering/leaving the kernel for any system call.
    pub syscall_entry: f64,
    /// Base cost of an `mmap` call on top of `syscall_entry`.
    pub mmap_base: f64,
    /// Additional `mmap` cost per VMA already present in the address space
    /// (models rb-tree/cache pressure; the dominant term for rewiring).
    pub mmap_per_existing_vma: f64,
    /// Saturation point of the per-VMA term: beyond this many VMAs the
    /// extra cost stays flat. The paper's rewiring numbers imply a per-call
    /// cost of ~1.2 µs at ~1 k VMAs per column growing to a plateau of
    /// ~3.3 µs (Table 1's 50 fragmented columns and Figure 5a's single one
    /// both land there despite 50x different process-wide VMA counts).
    pub mmap_vma_saturation: f64,
    /// Additional `mmap` cost per page of the new mapping.
    pub mmap_per_page: f64,
    /// Base cost of `munmap`/`mprotect` on top of `syscall_entry`.
    pub vma_op_base: f64,
    /// Per-page cost of `mprotect` range walks.
    pub mprotect_per_page: f64,
    /// Cost of copying one VMA (`fork`, `vm_snapshot`).
    pub vma_copy: f64,
    /// Cost of splitting a VMA at a boundary.
    pub vma_split: f64,
    /// Cost of copying one PTE and adjusting refcounts/protection
    /// (`fork`, `vm_snapshot`, `mprotect` downgrades).
    pub pte_copy: f64,
    /// Cost of a minor page fault (populate a PTE).
    pub page_fault: f64,
    /// Cost of copying one 4 KiB page (COW and physical copies).
    pub page_copy: f64,
    /// Cost of delivering a SIGSEGV to a user-space handler and returning
    /// (only incurred by user-space COW, i.e. rewired snapshotting).
    pub signal_delivery: f64,
    /// Fixed process-creation overhead of `fork` on top of the per-VMA and
    /// per-PTE copies.
    pub fork_base: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            syscall_entry: 450.0,
            mmap_base: 650.0,
            mmap_per_existing_vma: 0.04,
            mmap_vma_saturation: 55_000.0,
            mmap_per_page: 0.3,
            vma_op_base: 500.0,
            mprotect_per_page: 0.2,
            vma_copy: 150.0,
            vma_split: 250.0,
            pte_copy: 45.0,
            page_fault: 1_200.0,
            page_copy: 900.0,
            signal_delivery: 15_000.0,
            fork_base: 60_000.0,
        }
    }
}

impl CostModel {
    /// A zero-cost model: the virtual clock stays at 0 and only the real
    /// (structural) work of the simulator is measured. Useful for wall-clock
    /// benchmarks of the simulator itself.
    pub fn free() -> Self {
        CostModel {
            syscall_entry: 0.0,
            mmap_base: 0.0,
            mmap_per_existing_vma: 0.0,
            mmap_vma_saturation: f64::INFINITY,
            mmap_per_page: 0.0,
            vma_op_base: 0.0,
            mprotect_per_page: 0.0,
            vma_copy: 0.0,
            vma_split: 0.0,
            pte_copy: 0.0,
            page_fault: 0.0,
            page_copy: 0.0,
            signal_delivery: 0.0,
            fork_base: 0.0,
        }
    }

    /// Page-copy cost scaled from the 4 KiB reference to `page_size`.
    pub fn page_copy_for(&self, page_size: usize) -> f64 {
        self.page_copy * (page_size as f64 / 4096.0)
    }
}

/// Monotonic virtual clock, in nanoseconds. Charged by every simulated
/// kernel operation according to the [`CostModel`].
#[derive(Debug, Default)]
pub struct VirtualClock(AtomicU64);

impl VirtualClock {
    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Advance the clock by `ns` (fractional values are truncated after the
    /// per-operation sum, so sub-nanosecond per-item terms still count when
    /// charged in bulk).
    #[inline]
    pub fn charge(&self, ns: f64) {
        if ns > 0.0 {
            self.0.fetch_add(ns as u64, Ordering::Relaxed);
        }
    }
}

/// Per-kernel operation counters (all monotonically increasing).
#[derive(Debug, Default)]
pub struct Counters {
    pub mmap_calls: AtomicU64,
    pub munmap_calls: AtomicU64,
    pub mprotect_calls: AtomicU64,
    pub vm_snapshot_calls: AtomicU64,
    pub fork_calls: AtomicU64,
    pub page_faults: AtomicU64,
    pub cow_faults: AtomicU64,
    pub protection_faults: AtomicU64,
    pub frames_allocated: AtomicU64,
    pub frames_freed: AtomicU64,
    pub ptes_copied: AtomicU64,
    pub vmas_copied: AtomicU64,
    pub pages_copied: AtomicU64,
}

/// A plain-value snapshot of [`Counters`] plus the virtual clock, as
/// returned by [`crate::Kernel::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Virtual nanoseconds elapsed on the [`VirtualClock`].
    pub virtual_ns: u64,
    pub mmap_calls: u64,
    pub munmap_calls: u64,
    pub mprotect_calls: u64,
    pub vm_snapshot_calls: u64,
    pub fork_calls: u64,
    pub page_faults: u64,
    pub cow_faults: u64,
    pub protection_faults: u64,
    pub frames_allocated: u64,
    pub frames_freed: u64,
    pub ptes_copied: u64,
    pub vmas_copied: u64,
    pub pages_copied: u64,
}

impl KernelStats {
    /// Component-wise difference `self - earlier`; used by harnesses to
    /// measure the cost of a single operation window.
    pub fn delta_since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            virtual_ns: self.virtual_ns - earlier.virtual_ns,
            mmap_calls: self.mmap_calls - earlier.mmap_calls,
            munmap_calls: self.munmap_calls - earlier.munmap_calls,
            mprotect_calls: self.mprotect_calls - earlier.mprotect_calls,
            vm_snapshot_calls: self.vm_snapshot_calls - earlier.vm_snapshot_calls,
            fork_calls: self.fork_calls - earlier.fork_calls,
            page_faults: self.page_faults - earlier.page_faults,
            cow_faults: self.cow_faults - earlier.cow_faults,
            protection_faults: self.protection_faults - earlier.protection_faults,
            frames_allocated: self.frames_allocated - earlier.frames_allocated,
            frames_freed: self.frames_freed - earlier.frames_freed,
            ptes_copied: self.ptes_copied - earlier.ptes_copied,
            vmas_copied: self.vmas_copied - earlier.vmas_copied,
            pages_copied: self.pages_copied - earlier.pages_copied,
        }
    }
}

impl Counters {
    pub(crate) fn snapshot(&self, clock: &VirtualClock) -> KernelStats {
        let o = Ordering::Relaxed;
        KernelStats {
            virtual_ns: clock.now_ns(),
            mmap_calls: self.mmap_calls.load(o),
            munmap_calls: self.munmap_calls.load(o),
            mprotect_calls: self.mprotect_calls.load(o),
            vm_snapshot_calls: self.vm_snapshot_calls.load(o),
            fork_calls: self.fork_calls.load(o),
            page_faults: self.page_faults.load(o),
            cow_faults: self.cow_faults.load(o),
            protection_faults: self.protection_faults.load(o),
            frames_allocated: self.frames_allocated.load(o),
            frames_freed: self.frames_freed.load(o),
            ptes_copied: self.ptes_copied.load(o),
            vmas_copied: self.vmas_copied.load(o),
            pages_copied: self.pages_copied.load(o),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates() {
        let c = VirtualClock::default();
        c.charge(100.5);
        c.charge(0.0);
        c.charge(-5.0); // ignored
        assert_eq!(c.now_ns(), 100);
    }

    #[test]
    fn stats_delta() {
        let a = KernelStats {
            virtual_ns: 100,
            mmap_calls: 2,
            ..Default::default()
        };
        let b = KernelStats {
            virtual_ns: 350,
            mmap_calls: 7,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.virtual_ns, 250);
        assert_eq!(d.mmap_calls, 5);
    }

    #[test]
    fn page_copy_scales_with_page_size() {
        let m = CostModel::default();
        assert!((m.page_copy_for(4096) - m.page_copy).abs() < 1e-9);
        assert!((m.page_copy_for(2 * 1024 * 1024) - m.page_copy * 512.0).abs() < 1e-6);
    }

    #[test]
    fn free_model_is_zero() {
        let m = CostModel::free();
        assert_eq!(m.syscall_entry, 0.0);
        assert_eq!(m.page_copy_for(4096), 0.0);
    }
}
