//! Real-OS memory backend: column areas over `memfd_create` +
//! `mmap(MAP_SHARED)` pages, with engine-mediated copy-on-write.
//!
//! This is the paper's RUMA-style *rewiring* (§3.2.3) brought to real
//! memory without a patched kernel:
//!
//! * All column data lives in one anonymous main-memory file (a memfd).
//!   An **area** is a virtually contiguous `mmap(MAP_SHARED)` view whose
//!   pages each map some file page; a per-area table records which.
//! * [`VmBackend::vm_snapshot`](crate::VmBackend::vm_snapshot) never
//!   copies data: the destination view is simply (re)wired — page by
//!   page, `mmap(MAP_FIXED)` — onto the *same* file pages as the source,
//!   and every shared page is marked **frozen** in both views.
//! * Copy-on-write is performed by the *engine*, not by the MMU: because
//!   every store flows through [`VmBackend::write_u64`](crate::VmBackend::write_u64) /
//!   [`write_words`](crate::VmBackend::write_words) (the engine's serialized write path), the
//!   first store to a frozen page copies it into fresh file space and
//!   rewires only the written view onto the copy. No `mprotect`, no
//!   SIGSEGV handler, no signal-delivery cost (§4.1.4) — the check is one
//!   branch on a bit the backend already has in cache.
//! * A write to a frozen page whose file page is no longer shared
//!   (refcount back to 1 because every other view was released) reclaims
//!   the page in place instead of copying — the same optimisation the
//!   simulated kernel's fault handler applies.
//!
//! Released file pages go to a free list and are handed out again by
//! later allocations (zeroed) and copy-on-write splits (fully
//! overwritten), so steady-state snapshot churn does not grow the memfd.
//!
//! Everything is declared via direct `extern "C"` libc bindings — the
//! offline build forbids new registry dependencies.

use crate::error::{Result, VmError};
#[cfg(target_os = "linux")]
use parking_lot::RwLock;
#[cfg(target_os = "linux")]
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
#[cfg(target_os = "linux")]
use std::sync::atomic::Ordering;
#[cfg(target_os = "linux")]
use std::sync::Arc;

#[cfg(target_os = "linux")]
mod ffi {
    use core::ffi::{c_char, c_void};

    pub const PROT_READ: i32 = 0x1;
    pub const PROT_WRITE: i32 = 0x2;
    pub const PROT_NONE: i32 = 0x0;
    pub const MAP_SHARED: i32 = 0x01;
    pub const MAP_PRIVATE: i32 = 0x02;
    pub const MAP_FIXED: i32 = 0x10;
    pub const MAP_ANONYMOUS: i32 = 0x20;
    pub const MFD_CLOEXEC: u32 = 0x1;
    /// `_SC_PAGESIZE` on Linux.
    pub const SC_PAGESIZE: i32 = 30;
    /// `MADV_SEQUENTIAL`: expect sequential page references.
    pub const MADV_SEQUENTIAL: i32 = 2;
    /// `MADV_HUGEPAGE`: back the range with transparent huge pages where
    /// possible (honoured for shmem/memfd mappings since Linux 4.8).
    pub const MADV_HUGEPAGE: i32 = 14;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn ftruncate(fd: i32, length: i64) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn memfd_create(name: *const c_char, flags: u32) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
        pub fn sysconf(name: i32) -> i64;
        pub fn __errno_location() -> *mut i32;
    }

    pub fn errno() -> i32 {
        // SAFETY(provenance: __errno_location): the libc call always
        // returns a valid pointer to this thread's errno slot.
        unsafe { *__errno_location() }
    }
}

#[cfg(target_os = "linux")]
fn os_err(call: &'static str) -> VmError {
    VmError::Os {
        call,
        errno: ffi::errno(),
    }
}

/// One mapped view: `bytes / page_size` virtually contiguous pages, each
/// wired onto some file page of the shared memfd.
#[cfg(target_os = "linux")]
#[derive(Debug)]
struct Area {
    bytes: u64,
    /// File page (index into the memfd) backing each view page.
    pages: Vec<u64>,
    /// View pages shared with another view via `vm_snapshot`: a store must
    /// split (or reclaim) the page first.
    frozen: Vec<bool>,
}

/// File-page allocator state of the shared memfd.
#[cfg(target_os = "linux")]
#[derive(Debug, Default)]
struct FilePages {
    /// High-water mark, in pages.
    next: u64,
    /// `ftruncate`d size, in pages (grown geometrically).
    committed: u64,
    /// Released pages available for reuse.
    free: Vec<u64>,
    /// Per-file-page view reference count (index = file page).
    refs: Vec<u32>,
}

#[cfg(target_os = "linux")]
#[derive(Debug, Default)]
struct MapState {
    areas: BTreeMap<u64, Area>,
    file: FilePages,
}

/// Monotonic counters of the OS backend (diagnostics and tests).
#[derive(Debug, Default)]
pub struct OsStats {
    /// `vm_snapshot` calls served.
    pub snapshots: AtomicU64,
    /// Snapshots that recycled an existing destination view (§4.1.3).
    pub recycled: AtomicU64,
    /// Pages copied by engine-mediated copy-on-write.
    pub cow_copies: AtomicU64,
    /// Frozen pages reclaimed in place (sole owner — no copy needed).
    pub cow_reclaims: AtomicU64,
    /// `madvise(MADV_HUGEPAGE)` calls issued (huge-pages knob on).
    pub huge_page_advices: AtomicU64,
    /// `madvise(MADV_SEQUENTIAL)` calls issued by scans.
    pub sequential_advices: AtomicU64,
}

impl OsStats {
    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> OsStatsSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        OsStatsSnapshot {
            snapshots: self.snapshots.load(Relaxed),
            recycled: self.recycled.load(Relaxed),
            cow_copies: self.cow_copies.load(Relaxed),
            cow_reclaims: self.cow_reclaims.load(Relaxed),
            huge_page_advices: self.huge_page_advices.load(Relaxed),
            sequential_advices: self.sequential_advices.load(Relaxed),
        }
    }
}

/// A point-in-time copy of [`OsStats`] — the shape bench records and the
/// engine's stats surface carry (plain `u64`s, platform-independent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OsStatsSnapshot {
    pub snapshots: u64,
    pub recycled: u64,
    pub cow_copies: u64,
    pub cow_reclaims: u64,
    pub huge_page_advices: u64,
    pub sequential_advices: u64,
}

#[cfg(target_os = "linux")]
#[derive(Debug)]
struct OsInner {
    fd: i32,
    page_size: u64,
    /// Advise every (re)wired range `MADV_HUGEPAGE` so the kernel may
    /// collapse it into transparent huge pages (fewer TLB misses on big
    /// column scans). Off by default; see [`OsBackend::with_huge_pages`].
    huge_pages: bool,
    state: RwLock<MapState>,
    stats: OsStats,
}

/// Handle to the real-OS memory backend. Cheap to clone; all clones share
/// one memfd and one area table. See the module docs for the design.
#[cfg(target_os = "linux")]
#[derive(Debug, Clone)]
pub struct OsBackend {
    inner: Arc<OsInner>,
}

/// Non-Linux stub: construction always fails, so no operation is ever
/// reachable. Kept so backend selection compiles on every platform.
#[cfg(not(target_os = "linux"))]
#[derive(Debug, Clone)]
pub struct OsBackend {
    never: std::convert::Infallible,
}

#[cfg(target_os = "linux")]
impl OsBackend {
    /// Create a backend over a fresh memfd. Fails with [`VmError::Os`]
    /// when the kernel refuses (`memfd_create` needs Linux ≥ 3.17).
    pub fn new() -> Result<OsBackend> {
        Self::with_huge_pages(false)
    }

    /// Like [`OsBackend::new`], with the transparent-huge-pages knob: when
    /// `huge_pages` is true, every mapped (and rewired) view range is
    /// advised `MADV_HUGEPAGE`, and [`OsStats::huge_page_advices`] counts
    /// the hints issued. Whether the kernel honours them depends on the
    /// system's shmem THP policy; the hint itself is free.
    pub fn with_huge_pages(huge_pages: bool) -> Result<OsBackend> {
        // SAFETY(provenance: memfd_create): plain syscall; the name is a
        // valid NUL-terminated C string literal.
        let fd = unsafe { ffi::memfd_create(c"ankerdb-columns".as_ptr(), ffi::MFD_CLOEXEC) };
        if fd < 0 {
            return Err(os_err("memfd_create"));
        }
        // SAFETY(provenance: sysconf): the syscall reads no caller memory.
        let ps = unsafe { ffi::sysconf(ffi::SC_PAGESIZE) };
        if ps <= 0 || !(ps as u64).is_power_of_two() {
            // SAFETY(provenance: fd): the descriptor was just opened by us
            // and nothing else has seen it.
            unsafe { ffi::close(fd) };
            return Err(VmError::InvalidArgument("unusable system page size"));
        }
        Ok(OsBackend {
            inner: Arc::new(OsInner {
                fd,
                page_size: ps as u64,
                huge_pages,
                state: RwLock::new(MapState::default()),
                stats: OsStats::default(),
            }),
        })
    }

    /// Backend counters (snapshots, copy-on-write splits, reclaims).
    pub fn stats(&self) -> &OsStats {
        &self.inner.stats
    }

    /// Number of file pages currently referenced by at least one view.
    pub fn file_pages_in_use(&self) -> u64 {
        let st = self.inner.state.read();
        st.file.next - st.file.free.len() as u64
    }

    fn check_aligned(&self, v: u64) -> Result<()> {
        if v.is_multiple_of(self.inner.page_size) {
            Ok(())
        } else {
            Err(VmError::Misaligned { addr: v })
        }
    }

    /// Take one file page (free-list first), growing the memfd as needed.
    /// Returns `(file_page, recycled)` — a recycled page holds stale data
    /// the caller must overwrite or zero.
    fn take_file_page(&self, file: &mut FilePages) -> Result<(u64, bool)> {
        if let Some(fp) = file.free.pop() {
            debug_assert_eq!(file.refs[fp as usize], 0);
            file.refs[fp as usize] = 1;
            return Ok((fp, true));
        }
        let fp = file.next;
        file.next += 1;
        if file.next > file.committed {
            let grown = file.next.max(file.committed * 2).max(64);
            // SAFETY(provenance: fd, bounds: grown): fd is our memfd and
            // growing it never invalidates existing mappings.
            let rc =
                unsafe { ffi::ftruncate(self.inner.fd, (grown * self.inner.page_size) as i64) };
            if rc != 0 {
                file.next -= 1;
                return Err(os_err("ftruncate"));
            }
            file.committed = grown;
        }
        if file.refs.len() <= fp as usize {
            file.refs.resize(fp as usize + 1, 0);
        }
        file.refs[fp as usize] = 1;
        Ok((fp, false))
    }

    fn decref_file_page(file: &mut FilePages, fp: u64) {
        let r = &mut file.refs[fp as usize];
        debug_assert!(*r > 0, "file page {fp} double-freed");
        *r -= 1;
        if *r == 0 {
            file.free.push(fp);
        }
    }

    /// Reserve `bytes` of address space, then wire each run of contiguous
    /// file pages into it with `MAP_FIXED`. Returns the base address.
    fn map_view(&self, pages: &[u64]) -> Result<u64> {
        let ps = self.inner.page_size;
        let bytes = pages.len() as u64 * ps;
        // SAFETY(provenance: mmap, bounds: bytes): fresh anonymous
        // reservation at a kernel-chosen address — no existing memory is
        // touched.
        let base = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                bytes as usize,
                ffi::PROT_NONE,
                ffi::MAP_PRIVATE | ffi::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if base == ffi::map_failed() {
            return Err(os_err("mmap"));
        }
        let base = base as u64;
        if let Err(e) = self.wire_pages(base, pages) {
            // SAFETY(provenance: base, bounds: bytes): unwinding the fresh
            // reservation made just above, whole and unshared.
            unsafe { ffi::munmap(base as *mut _, bytes as usize) };
            return Err(e);
        }
        Ok(base)
    }

    /// `MAP_FIXED`-wire `view[base ..]` onto the given file pages, one
    /// `mmap` per maximal run of contiguous file pages.
    fn wire_pages(&self, base: u64, pages: &[u64]) -> Result<()> {
        let ps = self.inner.page_size;
        let mut i = 0usize;
        while i < pages.len() {
            let mut j = i + 1;
            while j < pages.len() && pages[j] == pages[j - 1] + 1 {
                j += 1;
            }
            let run = (j - i) as u64;
            // SAFETY(provenance: base, fd, bounds: run, ps): MAP_FIXED
            // over address space this backend owns (either a fresh
            // reservation or an existing view being rewired); the memfd
            // offset is within the truncated size.
            let p = unsafe {
                ffi::mmap(
                    (base + i as u64 * ps) as *mut _,
                    (run * ps) as usize,
                    ffi::PROT_READ | ffi::PROT_WRITE,
                    ffi::MAP_SHARED | ffi::MAP_FIXED,
                    self.inner.fd,
                    (pages[i] * ps) as i64,
                )
            };
            if p == ffi::map_failed() {
                return Err(os_err("mmap"));
            }
            if self.inner.huge_pages {
                // Each MAP_FIXED replaces the previous mapping (and its
                // advice), so freshly wired ranges are re-advised here —
                // the single point every view page passes through.
                // SAFETY(provenance: p, bounds: run, ps): advising the
                // mapping just created above; madvise on a valid range
                // cannot corrupt anything (it is a hint).
                unsafe { ffi::madvise(p, (run * ps) as usize, ffi::MADV_HUGEPAGE) };
                self.inner
                    .stats
                    .huge_page_advices
                    .fetch_add(1, Ordering::Relaxed);
            }
            i = j;
        }
        Ok(())
    }

    /// Locate the area containing `addr`; returns `(base, &area)`.
    fn area_at(state: &MapState, addr: u64) -> Result<(u64, &Area)> {
        state
            .areas
            .range(..=addr)
            .next_back()
            .filter(|(base, a)| addr < *base + a.bytes)
            .map(|(base, a)| (*base, a))
            .ok_or(VmError::NotMapped { addr })
    }

    /// Make page `page_idx` of the area at `base` privately writable:
    /// split (copy) it into fresh file space, or reclaim it in place when
    /// no other view references its file page. Caller holds the write
    /// lock and the engine's serialized write path.
    fn ensure_writable(&self, state: &mut MapState, base: u64, page_idx: usize) -> Result<()> {
        let ps = self.inner.page_size;
        let area = state.areas.get_mut(&base).expect("area exists");
        if !area.frozen[page_idx] {
            return Ok(());
        }
        let old_fp = area.pages[page_idx];
        if state.file.refs[old_fp as usize] == 1 {
            // Sole owner (every sharing view was released): write in place.
            area.frozen[page_idx] = false;
            self.inner
                .stats
                .cow_reclaims
                .fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let (new_fp, _recycled) = self.take_file_page(&mut state.file)?;
        // Copy the frozen content into the fresh file page through a
        // transient second mapping (both are views of the same memfd).
        // SAFETY(provenance: fd, bounds: new_fp, ps): fresh kernel-chosen
        // mapping of one just-allocated (hence in-bounds) file page.
        let tmp = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                ps as usize,
                ffi::PROT_READ | ffi::PROT_WRITE,
                ffi::MAP_SHARED,
                self.inner.fd,
                (new_fp * ps) as i64,
            )
        };
        if tmp == ffi::map_failed() {
            // Nothing was mutated: the page stays frozen, the copy goes
            // back to the free list.
            Self::decref_file_page(&mut state.file, new_fp);
            return Err(os_err("mmap"));
        }
        let view_page = (base + page_idx as u64 * ps) as *const u8;
        // SAFETY(provenance: view_page, tmp, bounds: ps): both pointers
        // reference one whole valid page; racing readers of the view page
        // are word-atomic and the engine serializes writers, so the source
        // is stable during the copy.
        unsafe {
            std::ptr::copy_nonoverlapping(view_page, tmp as *mut u8, ps as usize);
            ffi::munmap(tmp, ps as usize);
        }
        // Atomically rewire this view's page onto the copy; the other
        // views keep reading the old file page. On failure the old mapping
        // is intact (a single MAP_FIXED either lands or does not) — return
        // the copy to the free list and leave the page frozen.
        if let Err(e) = self.wire_pages(base + page_idx as u64 * ps, &[new_fp]) {
            Self::decref_file_page(&mut state.file, new_fp);
            return Err(e);
        }
        let area = state.areas.get_mut(&base).expect("area exists");
        area.pages[page_idx] = new_fp;
        area.frozen[page_idx] = false;
        Self::decref_file_page(&mut state.file, old_fp);
        self.inner.stats.cow_copies.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Bounds-check `[addr, addr + bytes)` against its containing area and
    /// return the page index range it spans.
    fn page_span(
        state: &MapState,
        addr: u64,
        bytes: u64,
        ps: u64,
    ) -> Result<(u64, std::ops::Range<usize>)> {
        let (base, area) = Self::area_at(state, addr)?;
        if addr + bytes > base + area.bytes {
            return Err(VmError::NotMapped {
                addr: base + area.bytes,
            });
        }
        let first = ((addr - base) / ps) as usize;
        let last = ((addr + bytes.max(1) - 1 - base) / ps) as usize;
        Ok((base, first..last + 1))
    }
}

#[cfg(target_os = "linux")]
impl crate::backend::VmBackend for OsBackend {
    fn page_size(&self) -> u64 {
        self.inner.page_size
    }

    fn alloc(&self, bytes: u64) -> Result<u64> {
        self.check_aligned(bytes)?;
        if bytes == 0 {
            return Err(VmError::InvalidArgument("alloc of zero length"));
        }
        let n = (bytes / self.inner.page_size) as usize;
        let mut st = self.inner.state.write();
        let mut pages = Vec::with_capacity(n);
        let mut recycled = Vec::new();
        for _ in 0..n {
            match self.take_file_page(&mut st.file) {
                Ok((fp, reused)) => {
                    if reused {
                        recycled.push(pages.len());
                    }
                    pages.push(fp);
                }
                Err(e) => {
                    // Give back what the loop already took, or a failed
                    // growth (ENOSPC under a cgroup limit, say) would leak
                    // the partial allocation for the backend's lifetime.
                    for fp in pages {
                        Self::decref_file_page(&mut st.file, fp);
                    }
                    return Err(e);
                }
            }
        }
        let base = match self.map_view(&pages) {
            Ok(base) => base,
            Err(e) => {
                // Return the taken file pages to the free list, or a failed
                // allocation would leak them for the backend's lifetime.
                for fp in pages {
                    Self::decref_file_page(&mut st.file, fp);
                }
                return Err(e);
            }
        };
        // Fresh (hole) pages read as zero; recycled ones must be zeroed.
        let ps = self.inner.page_size;
        for &i in &recycled {
            // SAFETY(provenance: base, bounds: i, ps): page i of the view
            // created just above is mapped writable and unshared.
            unsafe {
                std::ptr::write_bytes((base + i as u64 * ps) as *mut u8, 0, ps as usize);
            }
        }
        st.areas.insert(
            base,
            Area {
                bytes,
                pages,
                frozen: vec![false; n],
            },
        );
        Ok(base)
    }

    fn release(&self, addr: u64, bytes: u64) -> Result<()> {
        self.check_aligned(addr)?;
        let mut st = self.inner.state.write();
        let Some(area) = st.areas.get(&addr) else {
            return Err(VmError::NotMapped { addr });
        };
        if area.bytes != bytes {
            return Err(VmError::InvalidArgument(
                "release length does not match the area",
            ));
        }
        let area = st.areas.remove(&addr).expect("checked above");
        // SAFETY(provenance: area, bounds: bytes): unmapping a whole view
        // this backend created, just removed from the area table.
        let rc = unsafe { ffi::munmap(addr as *mut _, bytes as usize) };
        for fp in area.pages {
            Self::decref_file_page(&mut st.file, fp);
        }
        if rc != 0 {
            return Err(os_err("munmap"));
        }
        Ok(())
    }

    fn vm_snapshot(&self, dst: Option<u64>, src: u64, bytes: u64) -> Result<u64> {
        self.check_aligned(src)?;
        self.check_aligned(bytes)?;
        if bytes == 0 {
            return Err(VmError::InvalidArgument("vm_snapshot of zero length"));
        }
        let mut st = self.inner.state.write();
        // The OS backend snapshots whole areas (all the engine ever
        // needs); sub-area snapshots remain a simulated-kernel feature.
        let Some(src_area) = st.areas.get(&src) else {
            return Err(VmError::NotMapped { addr: src });
        };
        if src_area.bytes != bytes {
            return Err(VmError::InvalidArgument(
                "vm_snapshot length does not match the source area",
            ));
        }
        let src_pages = src_area.pages.clone();
        let n = src_pages.len();
        let dst_base = match dst {
            None => {
                let base = self.map_view(&src_pages)?;
                // map_view cannot partially succeed (it unwinds its own
                // reservation), so the references are safe to take now.
                for &fp in &src_pages {
                    st.file.refs[fp as usize] += 1;
                }
                st.areas.insert(
                    base,
                    Area {
                        bytes,
                        pages: src_pages.clone(),
                        frozen: vec![true; n],
                    },
                );
                base
            }
            Some(d) => {
                if d == src {
                    return Err(VmError::BadDestination { addr: d });
                }
                match st.areas.get(&d) {
                    Some(a) if a.bytes == bytes => {}
                    _ => return Err(VmError::BadDestination { addr: d }),
                }
                // Account the destination's new references *before* any
                // MAP_FIXED lands, so a partially rewired view can never
                // map an unaccounted file page.
                for &fp in &src_pages {
                    st.file.refs[fp as usize] += 1;
                }
                // Rewire the recycled view onto the source's file pages.
                if let Err(e) = self.wire_pages(d, &src_pages) {
                    // Some MAP_FIXED runs may already have landed: the view
                    // is an untrustworthy mix of old and new pages. Tear it
                    // down whole — the caller gets an error and a dangling
                    // (NotMapped) destination, never another area's bytes.
                    let area = st.areas.remove(&d).expect("checked");
                    // SAFETY(provenance: area, bounds: bytes): unmapping a
                    // whole view this backend created, just removed from
                    // the area table.
                    unsafe { ffi::munmap(d as *mut _, bytes as usize) };
                    for fp in area.pages {
                        Self::decref_file_page(&mut st.file, fp);
                    }
                    for &fp in &src_pages {
                        Self::decref_file_page(&mut st.file, fp);
                    }
                    return Err(e);
                }
                let old_pages = std::mem::replace(
                    &mut st.areas.get_mut(&d).expect("checked").pages,
                    src_pages.clone(),
                );
                for fp in old_pages {
                    Self::decref_file_page(&mut st.file, fp);
                }
                let a = st.areas.get_mut(&d).expect("checked");
                a.frozen = vec![true; n];
                self.inner.stats.recycled.fetch_add(1, Ordering::Relaxed);
                d
            }
        };
        // Both sides of every shared page stay frozen until a write splits
        // them.
        let src_area = st.areas.get_mut(&src).expect("checked");
        src_area.frozen.iter_mut().for_each(|f| *f = true);
        self.inner.stats.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(dst_base)
    }

    fn read_u64(&self, addr: u64) -> Result<u64> {
        // A real check, not a debug_assert: this is a safe public entry
        // point, and an unaligned volatile u64 load is UB, so the aligned
        // claim below must not rest on a debug-only precondition.
        if !addr.is_multiple_of(8) {
            return Err(VmError::Misaligned { addr });
        }
        let st = self.inner.state.read();
        let (base, area) = Self::area_at(&st, addr)?;
        if addr + 8 > base + area.bytes {
            return Err(VmError::NotMapped { addr });
        }
        // SAFETY(provenance: st, area, bounds: base, bytes): in-bounds of
        // a live mapping (the read lock excludes rewires); the volatile
        // word load tolerates racing word stores — the alignment checked
        // above makes it single-copy atomic on this hardware.
        Ok(unsafe { (addr as *const u64).read_volatile() })
    }

    fn write_u64(&self, addr: u64, value: u64) -> Result<()> {
        // Real check for the same reason as read_u64: an unaligned
        // volatile u64 store from this safe entry point would be UB.
        if !addr.is_multiple_of(8) {
            return Err(VmError::Misaligned { addr });
        }
        let ps = self.inner.page_size;
        {
            let st = self.inner.state.read();
            let (base, area) = Self::area_at(&st, addr)?;
            if addr + 8 > base + area.bytes {
                return Err(VmError::NotMapped { addr });
            }
            if !area.frozen[((addr - base) / ps) as usize] {
                // SAFETY(provenance: st, area, bounds: base, bytes):
                // in-bounds, mapped writable; the read lock keeps the
                // mapping from being rewired underneath the store (every
                // rewire path takes the write lock).
                unsafe { (addr as *mut u64).write_volatile(value) };
                return Ok(());
            }
        }
        // Frozen page: split it under the write lock, then store.
        let mut st = self.inner.state.write();
        let (base, _) = Self::area_at(&st, addr)?;
        self.ensure_writable(&mut st, base, ((addr - base) / ps) as usize)?;
        // SAFETY(provenance: st, ensure_writable, bounds: base): as above;
        // the page was re-resolved and split under the still-held write
        // lock.
        unsafe { (addr as *mut u64).write_volatile(value) };
        Ok(())
    }

    fn read_words(&self, addr: u64, buf: &mut [u64]) -> Result<()> {
        // Real check (see read_u64): unaligned volatile loads are UB.
        if !addr.is_multiple_of(8) {
            return Err(VmError::Misaligned { addr });
        }
        if buf.is_empty() {
            return Ok(());
        }
        let st = self.inner.state.read();
        Self::page_span(&st, addr, buf.len() as u64 * 8, self.inner.page_size)?;
        // SAFETY(provenance: st, page_span, bounds: buf): the whole range
        // is in-bounds of one live mapping held stable by the read lock;
        // volatile word loads tolerate racing word stores.
        unsafe {
            let mut p = addr as *const u64;
            for w in buf.iter_mut() {
                *w = p.read_volatile();
                p = p.add(1);
            }
        }
        Ok(())
    }

    fn write_words(&self, addr: u64, words: &[u64]) -> Result<()> {
        // Real check (see read_u64): unaligned volatile stores are UB.
        if !addr.is_multiple_of(8) {
            return Err(VmError::Misaligned { addr });
        }
        if words.is_empty() {
            return Ok(());
        }
        let mut st = self.inner.state.write();
        let (base, span) =
            Self::page_span(&st, addr, words.len() as u64 * 8, self.inner.page_size)?;
        for page_idx in span {
            self.ensure_writable(&mut st, base, page_idx)?;
        }
        // SAFETY(provenance: st, ensure_writable, bounds: span, words):
        // in-bounds and every touched page is now privately writable;
        // still holding the write lock.
        unsafe {
            let mut p = addr as *mut u64;
            for &w in words {
                p.write_volatile(w);
                p = p.add(1);
            }
        }
        Ok(())
    }

    fn advise_sequential(&self, addr: u64, bytes: u64) {
        let st = self.inner.state.read();
        let Ok((base, area)) = Self::area_at(&st, addr) else {
            return;
        };
        if addr != base || bytes > area.bytes {
            return;
        }
        // SAFETY(provenance: st, area, bounds: bytes): advising a live
        // mapping this backend owns (the read lock keeps it mapped);
        // MADV_SEQUENTIAL is a pure readahead hint.
        unsafe { ffi::madvise(addr as *mut _, bytes as usize, ffi::MADV_SEQUENTIAL) };
        self.inner
            .stats
            .sequential_advices
            .fetch_add(1, Ordering::Relaxed);
    }

    fn os_stats(&self) -> Option<OsStatsSnapshot> {
        Some(self.inner.stats.snapshot())
    }

    fn raw_parts(&self, addr: u64, bytes: u64) -> Option<*const u64> {
        if !addr.is_multiple_of(8) {
            return None;
        }
        let st = self.inner.state.read();
        let (base, area) = Self::area_at(&st, addr).ok()?;
        if addr + bytes > base + area.bytes {
            return None;
        }
        Some(addr as *const u64)
    }

    fn name(&self) -> &'static str {
        "os"
    }
}

#[cfg(target_os = "linux")]
impl Drop for OsInner {
    fn drop(&mut self) {
        let st = self.state.get_mut();
        for (&base, area) in st.areas.iter() {
            // SAFETY(provenance: area, bounds: bytes): unmapping whole
            // views this backend created; nothing can use them after Drop.
            unsafe { ffi::munmap(base as *mut _, area.bytes as usize) };
        }
        // SAFETY(provenance: fd): the descriptor was opened by
        // with_huge_pages and is owned solely by this inner value.
        unsafe { ffi::close(self.fd) };
    }
}

#[cfg(not(target_os = "linux"))]
impl OsBackend {
    /// The real-OS backend needs Linux (`memfd_create`); on other
    /// platforms construction always fails.
    pub fn new() -> Result<OsBackend> {
        Err(VmError::InvalidArgument(
            "the OS memory backend requires Linux (memfd_create)",
        ))
    }

    /// Huge-pages variant (stub: construction always fails off Linux).
    pub fn with_huge_pages(_huge_pages: bool) -> Result<OsBackend> {
        Self::new()
    }

    /// Number of file pages currently referenced (stub).
    pub fn file_pages_in_use(&self) -> u64 {
        match self.never {}
    }
}

#[cfg(not(target_os = "linux"))]
impl crate::backend::VmBackend for OsBackend {
    fn page_size(&self) -> u64 {
        match self.never {}
    }
    fn alloc(&self, _bytes: u64) -> Result<u64> {
        match self.never {}
    }
    fn release(&self, _addr: u64, _bytes: u64) -> Result<()> {
        match self.never {}
    }
    fn vm_snapshot(&self, _dst: Option<u64>, _src: u64, _bytes: u64) -> Result<u64> {
        match self.never {}
    }
    fn read_u64(&self, _addr: u64) -> Result<u64> {
        match self.never {}
    }
    fn write_u64(&self, _addr: u64, _value: u64) -> Result<()> {
        match self.never {}
    }
    fn read_words(&self, _addr: u64, _buf: &mut [u64]) -> Result<()> {
        match self.never {}
    }
    fn write_words(&self, _addr: u64, _words: &[u64]) -> Result<()> {
        match self.never {}
    }
    fn name(&self) -> &'static str {
        "os"
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::backend::VmBackend;

    #[test]
    fn alloc_is_zeroed_and_round_trips() {
        let b = OsBackend::new().unwrap();
        let ps = b.page_size();
        let a = b.alloc(2 * ps).unwrap();
        assert_eq!(b.read_u64(a).unwrap(), 0);
        assert_eq!(b.read_u64(a + 2 * ps - 8).unwrap(), 0);
        b.write_u64(a + 16, 99).unwrap();
        assert_eq!(b.read_u64(a + 16).unwrap(), 99);
        b.release(a, 2 * ps).unwrap();
    }

    #[test]
    fn snapshot_is_zero_copy_then_cow_on_write() {
        let b = OsBackend::new().unwrap();
        let ps = b.page_size();
        let a = b.alloc(4 * ps).unwrap();
        for p in 0..4u64 {
            b.write_u64(a + p * ps, 10 + p).unwrap();
        }
        let pages_before = b.file_pages_in_use();
        let snap = b.vm_snapshot(None, a, 4 * ps).unwrap();
        assert_eq!(
            b.file_pages_in_use(),
            pages_before,
            "snapshot copies no data"
        );
        for p in 0..4u64 {
            assert_eq!(b.read_u64(snap + p * ps).unwrap(), 10 + p);
        }
        // First write to a frozen source page splits exactly one page.
        b.write_u64(a + ps, 777).unwrap();
        assert_eq!(b.stats().cow_copies.load(Ordering::Relaxed), 1);
        assert_eq!(b.read_u64(a + ps).unwrap(), 777);
        assert_eq!(b.read_u64(snap + ps).unwrap(), 11, "snapshot unaffected");
        // Writing the same page again is free.
        b.write_u64(a + ps + 8, 778).unwrap();
        assert_eq!(b.stats().cow_copies.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sole_owner_write_reclaims_in_place() {
        let b = OsBackend::new().unwrap();
        let ps = b.page_size();
        let a = b.alloc(ps).unwrap();
        b.write_u64(a, 5).unwrap();
        let snap = b.vm_snapshot(None, a, ps).unwrap();
        b.release(snap, ps).unwrap();
        b.write_u64(a, 6).unwrap();
        assert_eq!(b.stats().cow_copies.load(Ordering::Relaxed), 0);
        assert_eq!(b.stats().cow_reclaims.load(Ordering::Relaxed), 1);
        assert_eq!(b.read_u64(a).unwrap(), 6);
    }

    #[test]
    fn recycled_destination_reads_source_content() {
        let b = OsBackend::new().unwrap();
        let ps = b.page_size();
        let a = b.alloc(2 * ps).unwrap();
        b.write_u64(a, 1).unwrap();
        let old = b.alloc(2 * ps).unwrap();
        b.write_u64(old, 42).unwrap();
        let d = b.vm_snapshot(Some(old), a, 2 * ps).unwrap();
        assert_eq!(d, old);
        assert_eq!(b.read_u64(d).unwrap(), 1, "rewired onto the source");
        assert_eq!(b.stats().recycled.load(Ordering::Relaxed), 1);
        // Both views split correctly afterwards.
        b.write_u64(a, 2).unwrap();
        assert_eq!(b.read_u64(d).unwrap(), 1);
        assert_eq!(b.read_u64(a).unwrap(), 2);
    }

    #[test]
    fn released_pages_are_reused_and_zeroed() {
        let b = OsBackend::new().unwrap();
        let ps = b.page_size();
        let a = b.alloc(8 * ps).unwrap();
        for p in 0..8u64 {
            b.write_u64(a + p * ps, u64::MAX).unwrap();
        }
        b.release(a, 8 * ps).unwrap();
        let hw = {
            let st = b.inner.state.read();
            st.file.next
        };
        let c = b.alloc(8 * ps).unwrap();
        let hw2 = {
            let st = b.inner.state.read();
            st.file.next
        };
        assert_eq!(hw, hw2, "allocation reused released file pages");
        for p in 0..8u64 {
            assert_eq!(b.read_u64(c + p * ps).unwrap(), 0, "recycled page zeroed");
        }
    }

    #[test]
    fn huge_page_hints_fire_on_wire_and_rewire() {
        let b = OsBackend::with_huge_pages(true).unwrap();
        let ps = b.page_size();
        let a = b.alloc(4 * ps).unwrap();
        let after_alloc = b.stats().huge_page_advices.load(Ordering::Relaxed);
        assert!(after_alloc > 0, "alloc must advise its fresh view");
        // A fresh-destination snapshot wires a second view: more hints.
        let snap = b.vm_snapshot(None, a, 4 * ps).unwrap();
        let after_snap = b.stats().huge_page_advices.load(Ordering::Relaxed);
        assert!(after_snap > after_alloc, "snapshot view must be advised");
        // Copy-on-write rewires one page of the written view: re-advised.
        b.write_u64(a, 1).unwrap();
        assert!(b.stats().huge_page_advices.load(Ordering::Relaxed) > after_snap);
        b.release(snap, 4 * ps).unwrap();
        b.release(a, 4 * ps).unwrap();
        // The knob off means zero hints.
        let plain = OsBackend::new().unwrap();
        let p = plain.alloc(ps).unwrap();
        assert_eq!(plain.stats().huge_page_advices.load(Ordering::Relaxed), 0);
        plain.release(p, ps).unwrap();
    }

    #[test]
    fn sequential_advice_counts_and_snapshots_surface() {
        let b = OsBackend::new().unwrap();
        let ps = b.page_size();
        let a = b.alloc(2 * ps).unwrap();
        b.advise_sequential(a, 2 * ps);
        b.advise_sequential(a, ps); // prefix of an area is fine too
        let s = b.os_stats().expect("OS backend surfaces stats");
        assert_eq!(s.sequential_advices, 2);
        assert_eq!(s, b.stats().snapshot());
        // Unknown address: ignored, not counted.
        b.advise_sequential(a + 64 * ps, ps);
        assert_eq!(b.stats().sequential_advices.load(Ordering::Relaxed), 2);
        b.release(a, 2 * ps).unwrap();
    }

    #[test]
    fn raw_parts_reads_through_the_mapping() {
        let b = OsBackend::new().unwrap();
        let ps = b.page_size();
        let a = b.alloc(ps).unwrap();
        b.write_u64(a + 8, 21).unwrap();
        let p = b.raw_parts(a, ps).unwrap();
        // SAFETY(provenance: p, a, bounds: ps): in-bounds of the live
        // mapping allocated just above.
        assert_eq!(unsafe { *p.add(1) }, 21);
        assert!(b.raw_parts(a, 2 * ps).is_none(), "out of bounds refused");
    }
}
