//! Safe, atomic access to a resolved (faulted-in) page.

use std::sync::atomic::{AtomicU64, Ordering};

/// A handle to one physical page obtained via [`crate::Space::resolve`].
///
/// All element access is by aligned 8-byte atomic loads/stores, so scans can
/// proceed concurrently with in-place MVCC updates without torn reads — the
/// same guarantee the paper gets from aligned word stores on x86.
///
/// Validity: the underlying chunk storage lives as long as the kernel, and
/// the handle keeps the kernel alive via an internal reference. If the page
/// is unmapped concurrently the handle keeps reading the *old* frame —
/// logically stale but memory-safe. Higher layers (snapshot pinning, column
/// locks) prevent staleness where it matters.
pub struct ResolvedPage {
    base: *mut u8,
    words: usize,
    writable: bool,
    /// Keeps the frame arena alive.
    _phys: std::sync::Arc<crate::phys::PhysMem>,
}

// SAFETY: all access to the pointee is atomic; the pointee outlives the
// handle because the handle holds the kernel alive.
unsafe impl Send for ResolvedPage {}
unsafe impl Sync for ResolvedPage {}

impl std::fmt::Debug for ResolvedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedPage")
            .field("words", &self.words)
            .field("writable", &self.writable)
            .finish()
    }
}

impl ResolvedPage {
    pub(crate) fn new(
        base: *mut u8,
        words: usize,
        writable: bool,
        phys: std::sync::Arc<crate::phys::PhysMem>,
    ) -> ResolvedPage {
        debug_assert_eq!(base as usize % 8, 0, "frame must be 8-byte aligned");
        ResolvedPage {
            base,
            words,
            writable,
            _phys: phys,
        }
    }

    /// Number of 8-byte words in the page.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Whether this handle permits stores (resolved for write).
    #[inline]
    pub fn writable(&self) -> bool {
        self.writable
    }

    /// Raw pointer to word `i` (internal fast path for point accesses).
    #[inline]
    pub(crate) fn as_word_ptr(&self, i: usize) -> *const AtomicU64 {
        assert!(i < self.words, "word index {i} out of page bounds");
        // SAFETY(provenance: base, bounds: i, words): in-bounds per the
        // assert above; word offsets keep the pointer 8-aligned.
        unsafe { self.base.add(i * 8) as *const AtomicU64 }
    }

    #[inline]
    fn atom(&self, i: usize) -> &AtomicU64 {
        assert!(i < self.words, "word index {i} out of page bounds");
        // SAFETY(provenance: base, bounds: i, words): in-bounds per the
        // assert above, 8-aligned, and the pointee stays valid for the
        // handle's life because the handle keeps the arena alive.
        unsafe { &*(self.base.add(i * 8) as *const AtomicU64) }
    }

    /// Atomically load word `i` (relaxed).
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.atom(i).load(Ordering::Relaxed)
    }

    /// Atomically load word `i` with acquire ordering.
    #[inline]
    pub fn load_acquire(&self, i: usize) -> u64 {
        // ORDERING: Acquire by caller contract — pairs with a
        // `store_release` of the same word (the MVCC layer's timestamp
        // brackets are built on this primitive).
        self.atom(i).load(Ordering::Acquire)
    }

    /// Atomically store word `i` (relaxed).
    ///
    /// # Panics
    /// Panics if the page was resolved read-only: storing through a
    /// read-resolved page would write to a frame that may be shared with a
    /// snapshot, silently corrupting it.
    #[inline]
    pub fn store(&self, i: usize, v: u64) {
        assert!(self.writable, "store through read-only page resolution");
        self.atom(i).store(v, Ordering::Relaxed);
    }

    /// Atomically store word `i` with release ordering.
    #[inline]
    pub fn store_release(&self, i: usize, v: u64) {
        assert!(self.writable, "store through read-only page resolution");
        // ORDERING: Release by caller contract — publishes the caller's
        // prior writes to any `load_acquire` of this word.
        self.atom(i).store(v, Ordering::Release);
    }

    /// Copy `dst.len()` bytes starting at byte `offset` into `dst`.
    /// Whole words are read atomically; `offset` must be 8-byte aligned.
    pub fn read_bytes(&self, offset: usize, dst: &mut [u8]) {
        assert_eq!(offset % 8, 0, "offset must be word aligned");
        assert!(offset + dst.len() <= self.words * 8, "read out of bounds");
        let mut i = offset / 8;
        let mut chunks = dst.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.load(i).to_le_bytes());
            i += 1;
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.load(i).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Copy `src` into the page starting at byte `offset` (word-atomic).
    /// `offset` must be 8-byte aligned; a trailing partial word is merged
    /// with the existing bytes read-modify-write style.
    pub fn write_bytes(&self, offset: usize, src: &[u8]) {
        assert!(self.writable, "write through read-only page resolution");
        assert_eq!(offset % 8, 0, "offset must be word aligned");
        assert!(offset + src.len() <= self.words * 8, "write out of bounds");
        let mut i = offset / 8;
        let mut chunks = src.chunks_exact(8);
        for chunk in &mut chunks {
            self.store(i, u64::from_le_bytes(chunk.try_into().unwrap()));
            i += 1;
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut bytes = self.load(i).to_le_bytes();
            bytes[..rem.len()].copy_from_slice(rem);
            self.store(i, u64::from_le_bytes(bytes));
        }
    }
}
