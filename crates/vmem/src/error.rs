//! Error type for the simulated virtual-memory subsystem.

use std::fmt;

/// Errors returned by the simulated kernel, mirroring the failure modes of
/// the real system calls (`MAP_FAILED` + `errno` in the paper's C API).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// An address or length was not page aligned (the paper requires
    /// `src_addr` and `length` of `vm_snapshot` to be page aligned).
    Misaligned { addr: u64 },
    /// Access to an address not covered by any VMA (SIGSEGV on a real
    /// system).
    NotMapped { addr: u64 },
    /// A write hit a page whose VMA forbids writing (SIGSEGV with a present
    /// mapping). Rewired snapshotting relies on catching exactly this fault
    /// to perform its manual copy-on-write.
    ProtectionFault { addr: u64 },
    /// Access beyond the end of a main-memory file (SIGBUS).
    BeyondFileEnd { file_page: u64, file_pages: u64 },
    /// The requested destination range of `vm_snapshot` is not (entirely)
    /// allocated, or overlaps the source.
    BadDestination { addr: u64 },
    /// The simulated machine ran out of physical frames.
    OutOfMemory,
    /// A semantically invalid request (zero length, unsupported flag
    /// combination, address-space exhaustion, ...).
    InvalidArgument(&'static str),
    /// A real operating-system call failed (OS backend only). Carries the
    /// failing call's name and `errno`.
    Os { call: &'static str, errno: i32 },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Misaligned { addr } => {
                write!(f, "address {addr:#x} is not page aligned")
            }
            VmError::NotMapped { addr } => {
                write!(f, "segfault: address {addr:#x} is not mapped")
            }
            VmError::ProtectionFault { addr } => {
                write!(f, "protection fault: write to read-only page at {addr:#x}")
            }
            VmError::BeyondFileEnd {
                file_page,
                file_pages,
            } => {
                write!(
                    f,
                    "bus error: file page {file_page} beyond file end ({file_pages} pages)"
                )
            }
            VmError::BadDestination { addr } => {
                write!(f, "vm_snapshot: bad destination area at {addr:#x}")
            }
            VmError::OutOfMemory => write!(f, "out of physical memory"),
            VmError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            VmError::Os { call, errno } => {
                write!(f, "os backend: {call} failed with errno {errno}")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, VmError>;
