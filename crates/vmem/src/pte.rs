//! The simulated page table: sharded virtual-page-number → PTE maps.
//!
//! Sharding is by the low bits of the virtual page number so that
//! neighbouring pages — which are faulted concurrently during scans and
//! bulk loads — land in different shards. Range operations (munmap,
//! `vm_snapshot`, mprotect downgrades) know their exact page range and
//! probe each page directly, so they cost O(range), not O(table).

use crate::phys::FrameId;
use anker_util::FxHashMap;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A page-table entry: the mapped frame plus a writable bit. A present,
/// non-writable PTE inside a writable VMA means copy-on-write is pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    pub frame: FrameId,
    pub writable: bool,
}

const SHARD_BITS: u32 = 6;
const N_SHARDS: usize = 1 << SHARD_BITS;

/// Sharded page table of one address space.
pub struct PageTable {
    shards: Box<[RwLock<FxHashMap<u64, Pte>>]>,
    len: AtomicUsize,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PageTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageTable")
            .field("len", &self.len())
            .finish()
    }
}

impl PageTable {
    pub fn new() -> PageTable {
        let shards = (0..N_SHARDS)
            .map(|_| RwLock::new(FxHashMap::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        PageTable {
            shards,
            len: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn shard(&self, vpn: u64) -> &RwLock<FxHashMap<u64, Pte>> {
        &self.shards[(vpn as usize) & (N_SHARDS - 1)]
    }

    /// Number of present PTEs.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True if no PTEs are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lock-light point lookup.
    #[inline]
    pub fn get(&self, vpn: u64) -> Option<Pte> {
        self.shard(vpn).read().get(&vpn).copied()
    }

    /// Run `f` with exclusive access to the entry slot for `vpn`.
    /// `f` may fill, change, or clear the slot; the PTE count is adjusted.
    pub fn with_entry<R>(&self, vpn: u64, f: impl FnOnce(&mut Option<Pte>) -> R) -> R {
        let mut shard = self.shard(vpn).write();
        let mut slot = shard.get(&vpn).copied();
        let had = slot.is_some();
        let r = f(&mut slot);
        match (had, slot) {
            (_, Some(pte)) => {
                shard.insert(vpn, pte);
                if !had {
                    self.len.fetch_add(1, Ordering::Relaxed);
                }
            }
            (true, None) => {
                shard.remove(&vpn);
                self.len.fetch_sub(1, Ordering::Relaxed);
            }
            (false, None) => {}
        }
        r
    }

    /// Remove and return the entry for `vpn`.
    pub fn remove(&self, vpn: u64) -> Option<Pte> {
        let removed = self.shard(vpn).write().remove(&vpn);
        if removed.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Insert `pte` for `vpn`, returning the previous entry if any.
    pub fn insert(&self, vpn: u64, pte: Pte) -> Option<Pte> {
        let prev = self.shard(vpn).write().insert(vpn, pte);
        if prev.is_none() {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        prev
    }

    /// Iterate over all present PTEs (used by `fork`). The iteration locks
    /// one shard at a time; entries inserted concurrently may be missed —
    /// callers must externally exclude mutation (fork runs with the address
    /// space quiesced).
    pub fn for_each(&self, mut f: impl FnMut(u64, Pte)) {
        for shard in self.shards.iter() {
            for (&vpn, &pte) in shard.read().iter() {
                f(vpn, pte);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let pt = PageTable::new();
        assert!(pt.is_empty());
        assert_eq!(pt.get(7), None);
        pt.insert(
            7,
            Pte {
                frame: FrameId(1),
                writable: true,
            },
        );
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.get(7).unwrap().frame, FrameId(1));
        let old = pt.remove(7).unwrap();
        assert!(old.writable);
        assert!(pt.is_empty());
        assert_eq!(pt.remove(7), None);
    }

    #[test]
    fn with_entry_counts() {
        let pt = PageTable::new();
        pt.with_entry(3, |slot| {
            assert!(slot.is_none());
            *slot = Some(Pte {
                frame: FrameId(9),
                writable: false,
            });
        });
        assert_eq!(pt.len(), 1);
        pt.with_entry(3, |slot| {
            let pte = slot.as_mut().unwrap();
            pte.writable = true;
        });
        assert_eq!(pt.len(), 1);
        assert!(pt.get(3).unwrap().writable);
        pt.with_entry(3, |slot| *slot = None);
        assert_eq!(pt.len(), 0);
    }

    #[test]
    fn for_each_sees_all() {
        let pt = PageTable::new();
        for vpn in 0..1000u64 {
            pt.insert(
                vpn,
                Pte {
                    frame: FrameId(vpn as u32),
                    writable: false,
                },
            );
        }
        let mut seen = 0u64;
        pt.for_each(|vpn, pte| {
            assert_eq!(pte.frame.0 as u64, vpn);
            seen += 1;
        });
        assert_eq!(seen, 1000);
    }

    #[test]
    fn concurrent_inserts_distinct_pages() {
        let pt = std::sync::Arc::new(PageTable::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let pt = pt.clone();
                s.spawn(move || {
                    for i in 0..5000u64 {
                        let vpn = t * 5000 + i;
                        pt.with_entry(vpn, |slot| {
                            *slot = Some(Pte {
                                frame: FrameId(vpn as u32),
                                writable: true,
                            })
                        });
                    }
                });
            }
        });
        assert_eq!(pt.len(), 20_000);
    }
}
