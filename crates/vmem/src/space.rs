//! Address spaces and the simulated system calls, including the paper's
//! custom `vm_snapshot` call (§4, Appendix A).
//!
//! Locking order: the VMA tree lock is always taken **before** any page
//! table shard lock. Faults take the VMA lock shared; VMA-mutating calls
//! (`mmap`, `munmap`, `mprotect`, `vm_snapshot`) take it exclusively, which
//! also quiesces concurrent faults for the duration of the call — the same
//! effect `mmap_sem` has in the real kernel.

use crate::error::{Result, VmError};
use crate::file::MemFile;
use crate::kernel::Kernel;
use crate::page::ResolvedPage;
use crate::phys::PhysMem;
use crate::pte::{PageTable, Pte};
use crate::vma::{Backing, Prot, Share, Vma};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether a memory access intends to read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
}

/// Backing requested in an `mmap` call.
#[derive(Debug, Clone)]
pub enum MapBacking<'a> {
    /// `MAP_ANONYMOUS`.
    Anon,
    /// Map the given main-memory file starting at a page-aligned byte
    /// offset.
    File(&'a MemFile, u64),
}

/// Lowest address handed out by the bump allocator (keeps 0 unmapped).
const MMAP_BASE: u64 = 0x1000_0000;

pub(crate) struct SpaceInner {
    id: u64,
    phys: Arc<PhysMem>,
    vmas: RwLock<BTreeMap<u64, Vma>>,
    pt: PageTable,
    next_addr: AtomicU64,
}

impl Drop for SpaceInner {
    fn drop(&mut self) {
        let phys = Arc::clone(&self.phys);
        self.pt.for_each(|_, pte| phys.decref(pte.frame));
    }
}

/// Handle to one simulated address space ("process"). Cheap to clone; all
/// clones refer to the same space.
#[derive(Clone)]
pub struct Space {
    kernel: Kernel,
    inner: Arc<SpaceInner>,
}

impl std::fmt::Debug for Space {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Space")
            .field("id", &self.inner.id)
            .field("vmas", &self.vma_count())
            .field("ptes", &self.pte_count())
            .finish()
    }
}

impl Space {
    pub(crate) fn new_empty(kernel: Kernel, id: u64) -> Space {
        let phys = Arc::clone(&kernel.state.phys);
        Space {
            kernel,
            inner: Arc::new(SpaceInner {
                id,
                phys,
                vmas: RwLock::new(BTreeMap::new()),
                pt: PageTable::new(),
                next_addr: AtomicU64::new(MMAP_BASE),
            }),
        }
    }

    /// Identifier of this space within its kernel.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The kernel this space belongs to.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> u64 {
        self.kernel.page_size() as u64
    }

    /// Number of VMAs currently describing this space.
    pub fn vma_count(&self) -> usize {
        self.inner.vmas.read().len()
    }

    /// Number of VMAs intersecting `[addr, addr+len)`.
    pub fn vma_count_in(&self, addr: u64, len: u64) -> usize {
        self.vmas_in(addr, len).len()
    }

    /// Clones of the VMAs intersecting `[addr, addr+len)`, in address order.
    pub fn vmas_in(&self, addr: u64, len: u64) -> Vec<Vma> {
        let map = self.inner.vmas.read();
        vmas_intersecting(&map, addr, len).cloned().collect()
    }

    /// Number of present PTEs.
    pub fn pte_count(&self) -> usize {
        self.inner.pt.len()
    }

    fn bump(&self, len: u64) -> u64 {
        // Guard page between allocations prevents accidental VMA merging
        // across logically distinct areas.
        self.inner
            .next_addr
            .fetch_add(len + self.page_size(), Ordering::Relaxed)
    }

    fn check_aligned(&self, v: u64) -> Result<()> {
        if !v.is_multiple_of(self.page_size()) {
            Err(VmError::Misaligned { addr: v })
        } else {
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // mmap / munmap / mprotect
    // ------------------------------------------------------------------

    /// Map `len` bytes (page aligned) of `backing` with the given
    /// protection and sharing, at a kernel-chosen address.
    pub fn mmap(&self, len: u64, prot: Prot, share: Share, backing: MapBacking<'_>) -> Result<u64> {
        // Validate before reserving address space: bumping by an unaligned
        // length would leave the allocator misaligned for every later map.
        self.check_aligned(len)?;
        let addr = self.bump(len);
        self.mmap_at(addr, len, prot, share, backing)?;
        Ok(addr)
    }

    /// Map at a fixed address (`MAP_FIXED`): atomically replaces any
    /// existing mappings in `[addr, addr+len)`. This is the rewiring
    /// primitive — re-pointing one or more virtual pages at different file
    /// offsets.
    pub fn mmap_at(
        &self,
        addr: u64,
        len: u64,
        prot: Prot,
        share: Share,
        backing: MapBacking<'_>,
    ) -> Result<()> {
        self.check_aligned(addr)?;
        self.check_aligned(len)?;
        if len == 0 {
            return Err(VmError::InvalidArgument("mmap of zero length"));
        }
        if matches!(share, Share::Shared) && matches!(backing, MapBacking::Anon) {
            return Err(VmError::InvalidArgument(
                "shared anonymous mappings are not supported by the simulator",
            ));
        }
        let backing = match backing {
            MapBacking::Anon => Backing::Anon,
            MapBacking::File(file, offset) => {
                self.check_aligned(offset)?;
                Backing::File {
                    file: Arc::clone(&file.inner),
                    offset,
                }
            }
        };
        let st = &self.kernel.state;
        st.counters.mmap_calls.fetch_add(1, Ordering::Relaxed);
        let mut map = self.inner.vmas.write();
        let pages = len / self.page_size();
        st.clock.charge(
            st.cost.syscall_entry
                + st.cost.mmap_base
                + st.cost.mmap_per_existing_vma
                    * (map.len() as f64).min(st.cost.mmap_vma_saturation)
                + st.cost.mmap_per_page * pages as f64,
        );
        self.unmap_locked(&mut map, addr, len);
        let vma = Vma {
            start: addr,
            end: addr + len,
            prot,
            share,
            backing,
        };
        insert_and_merge(&mut map, vma);
        Ok(())
    }

    /// Remove all mappings in `[addr, addr+len)`.
    pub fn munmap(&self, addr: u64, len: u64) -> Result<()> {
        self.check_aligned(addr)?;
        self.check_aligned(len)?;
        let st = &self.kernel.state;
        st.counters.munmap_calls.fetch_add(1, Ordering::Relaxed);
        st.clock.charge(st.cost.syscall_entry + st.cost.vma_op_base);
        let mut map = self.inner.vmas.write();
        self.unmap_locked(&mut map, addr, len);
        Ok(())
    }

    /// Change the protection of `[addr, addr+len)`. The whole range must be
    /// mapped (like Linux, which fails with `ENOMEM` on gaps). Downgrading
    /// to read-only clears the writable bit of existing PTEs so the next
    /// write faults — the mechanism rewired snapshotting uses to detect
    /// writes (§3.3.2(c)).
    pub fn mprotect(&self, addr: u64, len: u64, prot: Prot) -> Result<()> {
        self.check_aligned(addr)?;
        self.check_aligned(len)?;
        let st = &self.kernel.state;
        st.counters.mprotect_calls.fetch_add(1, Ordering::Relaxed);
        let pages = len / self.page_size();
        st.clock.charge(
            st.cost.syscall_entry + st.cost.vma_op_base + st.cost.mprotect_per_page * pages as f64,
        );
        let mut map = self.inner.vmas.write();
        if !is_covered(&map, addr, len) {
            return Err(VmError::NotMapped { addr });
        }
        let splits = split_at(&mut map, addr) as u64 + split_at(&mut map, addr + len) as u64;
        st.clock.charge(st.cost.vma_split * splits as f64);
        let keys: Vec<u64> = map.range(addr..addr + len).map(|(k, _)| *k).collect();
        for k in keys {
            map.get_mut(&k).expect("key just listed").prot = prot;
        }
        if !prot.write {
            let ps = self.page_size();
            for vpn in (addr / ps)..((addr + len) / ps) {
                self.inner.pt.with_entry(vpn, |slot| {
                    if let Some(pte) = slot {
                        pte.writable = false;
                    }
                });
            }
        }
        merge_range(&mut map, addr.saturating_sub(1), addr + len + 1);
        Ok(())
    }

    /// Remove VMAs and PTEs in range; caller holds the VMA write lock.
    fn unmap_locked(&self, map: &mut BTreeMap<u64, Vma>, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        split_at(map, addr);
        split_at(map, addr + len);
        let keys: Vec<u64> = map.range(addr..addr + len).map(|(k, _)| *k).collect();
        for k in keys {
            map.remove(&k);
        }
        let ps = self.page_size();
        for vpn in (addr / ps)..((addr + len) / ps) {
            if let Some(pte) = self.inner.pt.remove(vpn) {
                self.inner.phys.decref(pte.frame);
            }
        }
    }

    // ------------------------------------------------------------------
    // Memory access / fault handling
    // ------------------------------------------------------------------

    /// Resolve the page containing `addr` for the given access, handling
    /// demand paging and copy-on-write like the kernel's fault handler.
    ///
    /// Returns [`VmError::ProtectionFault`] for writes to pages whose VMA
    /// forbids writing — the simulated SIGSEGV that rewired snapshotting
    /// catches in user space.
    pub fn resolve(&self, addr: u64, access: Access) -> Result<ResolvedPage> {
        let ps = self.page_size();
        let vpn = addr / ps;
        if let Some(pte) = self.inner.pt.get(vpn) {
            if access == Access::Read || pte.writable {
                return Ok(self.resolved(pte.frame, access == Access::Write));
            }
        }
        self.fault(addr, vpn, access)
    }

    #[inline]
    fn resolved(&self, frame: crate::phys::FrameId, writable: bool) -> ResolvedPage {
        let phys = Arc::clone(&self.inner.phys);
        let ptr = phys.frame_ptr(frame);
        ResolvedPage::new(ptr, self.page_size() as usize / 8, writable, phys)
    }

    #[cold]
    fn fault(&self, addr: u64, vpn: u64, access: Access) -> Result<ResolvedPage> {
        let ps = self.page_size();
        let st = &self.kernel.state;
        let page_addr = vpn * ps;
        // Snapshot the VMA description under the shared lock, then drop it
        // before taking the page-table shard lock (lock order: vmas -> shard).
        let (prot, share, backing) = {
            let map = self.inner.vmas.read();
            let vma = find_vma(&map, addr).ok_or(VmError::NotMapped { addr })?;
            (vma.prot, vma.share, vma.backing_at(page_addr - vma.start))
        };
        if access == Access::Write && !prot.write {
            st.counters
                .protection_faults
                .fetch_add(1, Ordering::Relaxed);
            return Err(VmError::ProtectionFault { addr });
        }
        let phys = &self.inner.phys;
        let page_copy = st.cost.page_copy_for(ps as usize);
        let frame = self.inner.pt.with_entry(vpn, |slot| -> Result<_> {
            match slot {
                Some(pte) if access == Access::Read || pte.writable => Ok(pte.frame),
                Some(pte) => {
                    // Copy-on-write: present but not writable, VMA allows
                    // writes.
                    st.counters.cow_faults.fetch_add(1, Ordering::Relaxed);
                    st.clock.charge(st.cost.page_fault);
                    match share {
                        Share::Shared => {
                            // Protection upgrade on a shared file page.
                            pte.writable = true;
                            Ok(pte.frame)
                        }
                        Share::Private => {
                            if phys.refcount(pte.frame) == 1 {
                                // Sole owner (e.g. last snapshot was
                                // dropped): reclaim in place.
                                pte.writable = true;
                                Ok(pte.frame)
                            } else {
                                let fresh = phys.alloc()?;
                                phys.copy_frame(pte.frame, fresh);
                                phys.decref(pte.frame);
                                st.counters.pages_copied.fetch_add(1, Ordering::Relaxed);
                                st.clock.charge(page_copy);
                                *pte = Pte {
                                    frame: fresh,
                                    writable: true,
                                };
                                Ok(fresh)
                            }
                        }
                    }
                }
                None => {
                    // Demand paging.
                    st.counters.page_faults.fetch_add(1, Ordering::Relaxed);
                    st.clock.charge(st.cost.page_fault);
                    let (frame, writable) = match &backing {
                        Backing::Anon => {
                            // Fresh zeroed frame, exclusively owned.
                            (phys.alloc()?, prot.write)
                        }
                        Backing::File { file, offset } => {
                            let fpage = offset / ps;
                            let f = file.frame_for(fpage)?;
                            phys.incref(f);
                            (f, prot.write && share == Share::Shared)
                        }
                    };
                    if access == Access::Write && !writable {
                        // First write to a private file page: populate +
                        // immediate COW in one fault.
                        st.counters.cow_faults.fetch_add(1, Ordering::Relaxed);
                        let fresh = phys.alloc()?;
                        phys.copy_frame(frame, fresh);
                        phys.decref(frame);
                        st.counters.pages_copied.fetch_add(1, Ordering::Relaxed);
                        st.clock.charge(page_copy);
                        *slot = Some(Pte {
                            frame: fresh,
                            writable: true,
                        });
                        Ok(fresh)
                    } else {
                        *slot = Some(Pte { frame, writable });
                        Ok(frame)
                    }
                }
            }
        })?;
        Ok(self.resolved(frame, access == Access::Write))
    }

    /// Resolve `addr` to a raw word pointer without constructing a
    /// [`ResolvedPage`] (no refcount traffic — the hot path for point
    /// accesses). The pointee is only touched atomically and chunk storage
    /// lives as long as the kernel, which `self` keeps alive.
    #[inline]
    fn resolve_word(&self, addr: u64, access: Access) -> Result<*const AtomicU64> {
        let ps = self.page_size();
        let vpn = addr / ps;
        let frame = match self.inner.pt.get(vpn) {
            Some(pte) if access == Access::Read || pte.writable => pte.frame,
            _ => {
                // Slow path (fault) — reuse the full resolution machinery.
                return Ok(self
                    .fault(addr, vpn, access)?
                    .as_word_ptr(((addr % ps) / 8) as usize));
            }
        };
        let base = self.inner.phys.frame_ptr(frame);
        // SAFETY(provenance: frame, base, bounds: addr, ps): in-bounds of
        // the resolved frame; 8-aligned because addr is.
        Ok(unsafe { base.add((addr % ps) as usize) } as *const AtomicU64)
    }

    /// Read the 8-byte word at `addr` (must be 8-byte aligned).
    #[inline]
    pub fn read_u64(&self, addr: u64) -> Result<u64> {
        debug_assert_eq!(addr % 8, 0);
        let p = self.resolve_word(addr, Access::Read)?;
        // SAFETY(provenance: resolve_word, p, bounds: addr): the resolved
        // word pointer is valid for the kernel's lifetime; atomic access.
        Ok(unsafe { (*p).load(Ordering::Relaxed) })
    }

    /// Write the 8-byte word at `addr` (must be 8-byte aligned).
    #[inline]
    pub fn write_u64(&self, addr: u64, value: u64) -> Result<()> {
        debug_assert_eq!(addr % 8, 0);
        let p = self.resolve_word(addr, Access::Write)?;
        // SAFETY(provenance: resolve_word, p, bounds: addr): the resolved
        // word pointer is valid for the kernel's lifetime; atomic access.
        unsafe { (*p).store(value, Ordering::Relaxed) };
        Ok(())
    }

    /// Copy `dst.len()` bytes starting at `addr` (8-byte aligned) into
    /// `dst`, faulting pages in as needed.
    pub fn read_bytes(&self, addr: u64, dst: &mut [u8]) -> Result<()> {
        debug_assert_eq!(addr % 8, 0);
        let ps = self.page_size();
        let mut pos = addr;
        let mut remaining = dst;
        while !remaining.is_empty() {
            let in_page = (ps - pos % ps).min(remaining.len() as u64) as usize;
            let (head, tail) = remaining.split_at_mut(in_page);
            let page = self.resolve(pos, Access::Read)?;
            page.read_bytes((pos % ps) as usize, head);
            pos += in_page as u64;
            remaining = tail;
        }
        Ok(())
    }

    /// Copy `buf.len()` 8-byte words starting at `addr` (word aligned)
    /// into `buf`, resolving each page once — the block read underneath
    /// tight scan loops.
    pub fn read_words(&self, addr: u64, buf: &mut [u64]) -> Result<()> {
        debug_assert_eq!(addr % 8, 0);
        let wpp = (self.page_size() / 8) as usize;
        let mut pos = addr;
        let mut remaining = &mut buf[..];
        while !remaining.is_empty() {
            let in_page = (pos % self.page_size()) as usize / 8;
            let take = (wpp - in_page).min(remaining.len());
            let (head, tail) = remaining.split_at_mut(take);
            let page = self.resolve(pos, Access::Read)?;
            for (i, w) in head.iter_mut().enumerate() {
                *w = page.load(in_page + i);
            }
            pos += take as u64 * 8;
            remaining = tail;
        }
        Ok(())
    }

    /// Copy `words` into memory starting at `addr` (word aligned),
    /// resolving each page once for writing (faults/COWs as needed).
    pub fn write_words(&self, addr: u64, words: &[u64]) -> Result<()> {
        debug_assert_eq!(addr % 8, 0);
        let wpp = (self.page_size() / 8) as usize;
        let mut pos = addr;
        let mut remaining = words;
        while !remaining.is_empty() {
            let in_page = (pos % self.page_size()) as usize / 8;
            let take = (wpp - in_page).min(remaining.len());
            let (head, tail) = remaining.split_at(take);
            let page = self.resolve(pos, Access::Write)?;
            for (i, &w) in head.iter().enumerate() {
                page.store(in_page + i, w);
            }
            pos += take as u64 * 8;
            remaining = tail;
        }
        Ok(())
    }

    /// Copy `src` into memory starting at `addr` (8-byte aligned).
    pub fn write_bytes(&self, addr: u64, src: &[u8]) -> Result<()> {
        debug_assert_eq!(addr % 8, 0);
        let ps = self.page_size();
        let mut pos = addr;
        let mut remaining = src;
        while !remaining.is_empty() {
            let in_page = (ps - pos % ps).min(remaining.len() as u64) as usize;
            let (head, tail) = remaining.split_at(in_page);
            let page = self.resolve(pos, Access::Write)?;
            page.write_bytes((pos % ps) as usize, head);
            pos += in_page as u64;
            remaining = tail;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // fork & vm_snapshot
    // ------------------------------------------------------------------

    /// Duplicate the entire address space, as the `fork` system call does:
    /// all VMAs and PTEs are copied; private pages become copy-on-write in
    /// both parent and child (§3.2.2).
    pub fn fork(&self) -> Result<Space> {
        let st = &self.kernel.state;
        st.counters.fork_calls.fetch_add(1, Ordering::Relaxed);
        st.clock.charge(st.cost.syscall_entry + st.cost.fork_base);
        let child = self.kernel.create_space();
        let ps = self.page_size();
        let map = self.inner.vmas.read();
        let mut child_map = child.inner.vmas.write();
        let mut n_vmas = 0u64;
        let mut n_ptes = 0u64;
        for vma in map.values() {
            child_map.insert(vma.start, vma.clone());
            n_vmas += 1;
            for vpn in (vma.start / ps)..(vma.end / ps) {
                let Some(mut pte) = self.inner.pt.get(vpn) else {
                    continue;
                };
                if vma.share == Share::Private && pte.writable {
                    pte.writable = false;
                    self.inner.pt.insert(vpn, pte);
                }
                self.inner.phys.incref(pte.frame);
                child.inner.pt.insert(vpn, pte);
                n_ptes += 1;
            }
        }
        child.inner.next_addr.store(
            self.inner.next_addr.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        st.counters.vmas_copied.fetch_add(n_vmas, Ordering::Relaxed);
        st.counters.ptes_copied.fetch_add(n_ptes, Ordering::Relaxed);
        st.clock
            .charge(st.cost.vma_copy * n_vmas as f64 + st.cost.pte_copy * n_ptes as f64);
        drop(child_map);
        Ok(child)
    }

    /// The paper's custom system call (§4.1, Appendix A):
    /// snapshot the virtual memory area `[src, src+len)` into a new area
    /// (`dst = None`) or into an existing, fully allocated area
    /// (`dst = Some(addr)`, §4.1.3 "recycling"). Returns the destination
    /// address.
    ///
    /// Steps mirror Appendix A: (1) verify the source is allocated,
    /// (2) identify the covering VMAs, (3) split border VMAs, (4) reserve or
    /// recycle the destination, (5) copy the VMAs, (6-7) for private VMAs
    /// copy the PTEs, marking both source and destination copy-on-write.
    pub fn vm_snapshot(&self, dst: Option<u64>, src: u64, len: u64) -> Result<u64> {
        self.check_aligned(src)?;
        self.check_aligned(len)?;
        if len == 0 {
            return Err(VmError::InvalidArgument("vm_snapshot of zero length"));
        }
        let st = &self.kernel.state;
        st.counters
            .vm_snapshot_calls
            .fetch_add(1, Ordering::Relaxed);
        st.clock.charge(st.cost.syscall_entry);
        let ps = self.page_size();
        let mut map = self.inner.vmas.write();
        // Step 1: the source must be entirely allocated.
        if !is_covered(&map, src, len) {
            return Err(VmError::NotMapped { addr: src });
        }
        // Step 4: reserve or validate the destination.
        let dst_addr = match dst {
            None => self.bump(len),
            Some(d) => {
                self.check_aligned(d)?;
                let overlaps = d < src + len && src < d + len;
                if overlaps {
                    return Err(VmError::BadDestination { addr: d });
                }
                if !is_covered(&map, d, len) {
                    return Err(VmError::BadDestination { addr: d });
                }
                // Recycle: drop existing mappings of the destination area.
                self.unmap_locked(&mut map, d, len);
                d
            }
        };
        // Step 3: split the border VMAs.
        let splits = split_at(&mut map, src) as u64 + split_at(&mut map, src + len) as u64;
        st.clock.charge(st.cost.vma_split * splits as f64);
        // Steps 5-7: copy VMAs, then PTEs of private VMAs.
        let src_vmas: Vec<Vma> = map.range(src..src + len).map(|(_, v)| v.clone()).collect();
        let mut n_ptes = 0u64;
        let n_vmas = src_vmas.len() as u64;
        for vma in &src_vmas {
            debug_assert!(vma.start >= src && vma.end <= src + len);
            let offset = vma.start - src;
            let copy = Vma {
                start: dst_addr + offset,
                end: dst_addr + offset + vma.len(),
                prot: vma.prot,
                share: vma.share,
                backing: vma.backing.clone(),
            };
            map.insert(copy.start, copy);
            if vma.share != Share::Private {
                continue;
            }
            for vpn in (vma.start / ps)..(vma.end / ps) {
                let Some(mut pte) = self.inner.pt.get(vpn) else {
                    continue;
                };
                if pte.writable {
                    // Mark the source copy-on-write.
                    pte.writable = false;
                    self.inner.pt.insert(vpn, pte);
                }
                self.inner.phys.incref(pte.frame);
                let dst_vpn = (dst_addr + (vpn * ps - src)) / ps;
                self.inner.pt.insert(
                    dst_vpn,
                    Pte {
                        frame: pte.frame,
                        writable: false,
                    },
                );
                n_ptes += 1;
            }
        }
        st.counters.vmas_copied.fetch_add(n_vmas, Ordering::Relaxed);
        st.counters.ptes_copied.fetch_add(n_ptes, Ordering::Relaxed);
        st.clock
            .charge(st.cost.vma_copy * n_vmas as f64 + st.cost.pte_copy * n_ptes as f64);
        Ok(dst_addr)
    }
}

// ----------------------------------------------------------------------
// VMA tree helpers (free functions over the locked map)
// ----------------------------------------------------------------------

fn find_vma(map: &BTreeMap<u64, Vma>, addr: u64) -> Option<&Vma> {
    map.range(..=addr)
        .next_back()
        .map(|(_, v)| v)
        .filter(|v| v.contains(addr))
}

fn vmas_intersecting(map: &BTreeMap<u64, Vma>, addr: u64, len: u64) -> impl Iterator<Item = &Vma> {
    let first = map
        .range(..=addr)
        .next_back()
        .filter(|(_, v)| v.end > addr)
        .map(|(k, _)| *k)
        .unwrap_or(addr);
    map.range(first..addr + len).map(|(_, v)| v)
}

/// True if `[addr, addr+len)` is fully covered by VMAs with no gaps.
fn is_covered(map: &BTreeMap<u64, Vma>, addr: u64, len: u64) -> bool {
    let mut cursor = addr;
    let end = addr + len;
    for vma in vmas_intersecting(map, addr, len) {
        if vma.start > cursor {
            return false;
        }
        cursor = cursor.max(vma.end);
        if cursor >= end {
            return true;
        }
    }
    cursor >= end
}

/// Split the VMA containing `addr` so that `addr` becomes a VMA boundary.
/// Returns `true` if a split happened.
fn split_at(map: &mut BTreeMap<u64, Vma>, addr: u64) -> bool {
    let Some((&start, vma)) = map
        .range_mut(..addr)
        .next_back()
        .filter(|(_, v)| v.contains(addr))
    else {
        return false;
    };
    debug_assert!(start < addr);
    let tail = Vma {
        start: addr,
        end: vma.end,
        prot: vma.prot,
        share: vma.share,
        backing: vma.backing_at(addr - vma.start),
    };
    vma.end = addr;
    map.insert(addr, tail);
    true
}

/// Insert `vma` (whose range must be free) and merge it with compatible
/// neighbours, as the kernel does for anonymous and contiguous file
/// mappings.
fn insert_and_merge(map: &mut BTreeMap<u64, Vma>, vma: Vma) {
    debug_assert!(!vma.is_empty());
    let mut key = vma.start;
    map.insert(key, vma);
    // Merge with predecessor.
    if let Some((&pk, prev)) = map.range(..key).next_back() {
        if prev.can_merge_with(&map[&key]) {
            let end = map[&key].end;
            map.remove(&key);
            map.get_mut(&pk).expect("predecessor exists").end = end;
            key = pk;
        }
    }
    // Merge with successor.
    let cur_end = map[&key].end;
    if let Some((&nk, _)) = map.range(cur_end..).next() {
        if nk == cur_end && map[&key].can_merge_with(&map[&nk]) {
            let end = map[&nk].end;
            map.remove(&nk);
            map.get_mut(&key).expect("current exists").end = end;
        }
    }
}

/// Re-merge compatible adjacent VMAs whose boundaries fall in
/// `[from, to)` — used after `mprotect` restores uniform protection.
fn merge_range(map: &mut BTreeMap<u64, Vma>, from: u64, to: u64) {
    let keys: Vec<u64> = map.range(from..to).map(|(k, _)| *k).collect();
    for k in keys {
        // The key may already have been merged away.
        if !map.contains_key(&k) {
            continue;
        }
        if let Some((&pk, prev)) = map.range(..k).next_back() {
            if prev.can_merge_with(&map[&k]) {
                let end = map[&k].end;
                map.remove(&k);
                map.get_mut(&pk).expect("predecessor exists").end = end;
            }
        }
    }
}
