//! # anker-vmem — simulated kernel virtual-memory subsystem
//!
//! This crate is the substrate substitution for the AnKerDB paper
//! ("Accelerating Analytical Processing in MVCC using Fine-Granular
//! High-Frequency Virtual Snapshotting", SIGMOD'18): the paper's headline
//! mechanism is a custom Linux system call, `vm_snapshot`, compiled into a
//! patched kernel. Since a custom kernel cannot be loaded here, this crate
//! reimplements the relevant slice of the Linux virtual-memory subsystem in
//! user space, faithfully enough that every snapshotting technique the paper
//! discusses — physical copies, `fork`-based COW snapshots, user-space
//! *rewiring* over main-memory files, and the custom `vm_snapshot` call —
//! runs against the same machinery and exhibits the same cost structure.
//!
//! What is modelled (paper §3.2, Figures 2-4):
//!
//! * **Physical frames** with reference counts ([`phys::PhysMem`]). Data is
//!   really stored; snapshots are functionally correct, not mocked.
//! * **VMAs** (`vm_area_struct`): per-space ordered tree with splitting and
//!   Linux-style merging of compatible neighbours ([`vma::Vma`]).
//! * **Page tables**: per-space sharded VPN→PTE maps with a writable bit
//!   ([`pte::PageTable`]).
//! * **Demand paging and copy-on-write** in the fault handler
//!   ([`Space::resolve`]).
//! * **Main-memory files** (memfd equivalents) for rewiring
//!   ([`file::MemFile`]).
//! * **System calls**: `mmap` (incl. `MAP_FIXED` rewiring), `munmap`,
//!   `mprotect`, `fork`, and the paper's `vm_snapshot` (Appendix A
//!   semantics, including destination-area recycling, §4.1.3).
//! * **Cost accounting**: a calibrated virtual clock plus operation
//!   counters ([`cost::CostModel`], [`Kernel::stats`]) so that Table 1 and
//!   Figure 5 of the paper can be reproduced in shape *and* scale.
//!
//! Since the backend split, the crate also hosts the engine-facing
//! [`VmBackend`] trait and a second implementation of it: [`OsBackend`]
//! (Linux), which maps column areas over real `memfd_create` +
//! `mmap(MAP_SHARED)` memory and performs RUMA-style rewiring with
//! engine-mediated copy-on-write — snapshots at actual hardware speed.
//! The simulated [`Space`] implements the same trait and remains the
//! default substrate.
//!
//! ## Example
//!
//! ```
//! use anker_vmem::{Access, Kernel, MapBacking, Prot, Share};
//!
//! let kernel = Kernel::default();
//! let space = kernel.create_space();
//! let ps = space.page_size();
//!
//! // A 16-page anonymous private area (a "column").
//! let col = space
//!     .mmap(16 * ps, Prot::READ_WRITE, Share::Private, MapBacking::Anon)
//!     .unwrap();
//! space.write_u64(col, 42).unwrap();
//!
//! // Take a virtual snapshot with the paper's custom system call.
//! let snap = space.vm_snapshot(None, col, 16 * ps).unwrap();
//! assert_eq!(space.read_u64(snap).unwrap(), 42);
//!
//! // Writes to the source no longer affect the snapshot (copy-on-write).
//! space.write_u64(col, 7).unwrap();
//! assert_eq!(space.read_u64(col).unwrap(), 7);
//! assert_eq!(space.read_u64(snap).unwrap(), 42);
//! ```

pub mod backend;
pub mod cost;
pub mod error;
pub mod file;
pub mod kernel;
pub mod os;
pub mod page;
pub mod phys;
pub mod pte;
pub mod space;
pub mod vma;

pub use backend::VmBackend;
pub use cost::{CostModel, KernelStats};
pub use error::{Result, VmError};
pub use file::MemFile;
pub use kernel::{Kernel, KernelConfig};
pub use os::{OsBackend, OsStats, OsStatsSnapshot};
pub use page::ResolvedPage;
pub use phys::FrameId;
pub use space::{Access, MapBacking, Space};
pub use vma::{Backing, Prot, Share, Vma};
