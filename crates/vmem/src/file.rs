//! Main-memory files — the simulated `memfd` objects that the rewiring
//! technique ([RUMA, PVLDB'16]) uses to make physical memory visible and
//! manipulable from user space (paper §3.2.3, Figure 4).
//!
//! A main-memory file is a growable array of page slots, each lazily backed
//! by a physical frame. Virtual memory areas can map file ranges either
//! shared (writes go to the file's frames) or private (copy-on-write).

use crate::error::{Result, VmError};
use crate::phys::{FrameId, PhysMem};
use parking_lot::RwLock;
use std::sync::Arc;

/// Shared state of one main-memory file. Held via `Arc` by file handles and
/// by every VMA mapping the file.
pub struct FileInner {
    id: u64,
    phys: Arc<PhysMem>,
    /// Lazily allocated page slots; `None` = hole (allocated on first
    /// access, zero-filled).
    pages: RwLock<Vec<Option<FrameId>>>,
}

impl std::fmt::Debug for FileInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemFile")
            .field("id", &self.id)
            .field("pages", &self.pages.read().len())
            .finish()
    }
}

impl FileInner {
    pub(crate) fn new(id: u64, phys: Arc<PhysMem>, n_pages: u64) -> FileInner {
        FileInner {
            id,
            phys,
            pages: RwLock::new(vec![None; n_pages as usize]),
        }
    }

    /// Unique file identifier within its kernel.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current size in pages.
    pub fn n_pages(&self) -> u64 {
        self.pages.read().len() as u64
    }

    /// Resize to `n_pages`. Shrinking releases the file's reference on the
    /// truncated frames (mapped PTEs keep theirs, like a real memfd).
    pub fn truncate(&self, n_pages: u64) {
        let mut pages = self.pages.write();
        let n = n_pages as usize;
        if n < pages.len() {
            for f in pages.drain(n..).flatten() {
                self.phys.decref(f);
            }
        } else {
            pages.resize(n, None);
        }
    }

    /// Frame backing `page_idx`, allocating a zeroed frame on first access.
    /// Fails with a SIGBUS-equivalent beyond the file end.
    pub(crate) fn frame_for(&self, page_idx: u64) -> Result<FrameId> {
        {
            let pages = self.pages.read();
            match pages.get(page_idx as usize) {
                Some(Some(f)) => return Ok(*f),
                Some(None) => {}
                None => {
                    return Err(VmError::BeyondFileEnd {
                        file_page: page_idx,
                        file_pages: pages.len() as u64,
                    })
                }
            }
        }
        let mut pages = self.pages.write();
        match pages.get(page_idx as usize) {
            Some(Some(f)) => Ok(*f),
            Some(None) => {
                let f = self.phys.alloc()?;
                pages[page_idx as usize] = Some(f);
                Ok(f)
            }
            None => Err(VmError::BeyondFileEnd {
                file_page: page_idx,
                file_pages: pages.len() as u64,
            }),
        }
    }

    /// Copy the contents of file page `src` to file page `dst`
    /// (allocating either side as needed).
    pub(crate) fn copy_page(&self, src: u64, dst: u64) -> Result<()> {
        let s = self.frame_for(src)?;
        let d = self.frame_for(dst)?;
        self.phys.copy_frame(s, d);
        Ok(())
    }
}

impl Drop for FileInner {
    fn drop(&mut self) {
        for slot in self.pages.get_mut().iter().flatten() {
            self.phys.decref(*slot);
        }
    }
}

/// Cheap-to-clone handle to a main-memory file, created with
/// [`crate::Kernel::create_file`].
#[derive(Clone, Debug)]
pub struct MemFile {
    pub(crate) kernel: crate::Kernel,
    pub(crate) inner: Arc<FileInner>,
}

impl MemFile {
    /// Unique file identifier within its kernel.
    pub fn id(&self) -> u64 {
        self.inner.id()
    }

    /// Current size in pages.
    pub fn n_pages(&self) -> u64 {
        self.inner.n_pages()
    }

    /// Resize the file (see [`FileInner::truncate`]). Charges one syscall.
    pub fn truncate(&self, n_pages: u64) {
        self.kernel.charge_syscall();
        self.inner.truncate(n_pages);
    }

    /// Append `n_pages` fresh page slots, returning the index of the first
    /// new page. Used by rewired snapshotting as its pool of unused pages.
    pub fn grow(&self, n_pages: u64) -> u64 {
        self.kernel.charge_syscall();
        let first = self.inner.n_pages();
        self.inner.truncate(first + n_pages);
        first
    }

    /// Copy file page `src` to file page `dst`, charging the page-copy cost.
    /// This is the copy step of a manual (user-space) copy-on-write.
    pub fn copy_page(&self, src: u64, dst: u64) -> Result<()> {
        self.kernel.charge_memcpy_page();
        self.inner.copy_page(src, dst)
    }
}
