//! The backend abstraction the storage engine allocates column areas on.
//!
//! The engine above this crate needs exactly five memory capabilities:
//! allocate a zero-filled area, release it, duplicate it with
//! copy-on-write semantics (the paper's `vm_snapshot`), and read/write
//! 8-byte words. [`VmBackend`] captures that contract so two very
//! different substrates can serve it:
//!
//! * the **simulated kernel** ([`crate::Space`]) — faithful page tables,
//!   VMAs, and a calibrated virtual clock, used for the paper's Table 1 /
//!   Figure 5 cost reproductions, and
//! * the **real-OS backend** ([`crate::OsBackend`], Linux) — column areas
//!   over `memfd_create` + `mmap(MAP_SHARED)` pages, where a snapshot is a
//!   second shared view of the same file pages and copy-on-write is
//!   performed *by the engine* on first write to a frozen page (RUMA-style
//!   rewiring, paper §3.2.3). Because every write already flows through
//!   the engine's serialized write path, no `mprotect`/SIGSEGV machinery
//!   is needed.
//!
//! Both backends promise the same observable semantics, checked by the
//! `backend_semantics` and `backend_equiv` test suites: after
//! `vm_snapshot`, the source and destination read identically, and a
//! write through either view never changes what the other view reads.

use crate::error::Result;

/// A virtual-memory substrate for column areas. Addresses are opaque
/// `u64`s handed out by [`VmBackend::alloc`] / [`VmBackend::vm_snapshot`];
/// all offsets and lengths are in bytes and must be 8-byte aligned (area
/// granularity is the backend's page size).
///
/// Implementations must be safe to share across threads: reads may race
/// writes (the engine's per-row timestamp protocol makes any interleaving
/// safe at word granularity), but area-level mutations (`alloc`,
/// `release`, `vm_snapshot`) are only ever issued from the engine's
/// serialized commit section.
pub trait VmBackend: Send + Sync + std::fmt::Debug {
    /// Page size in bytes (the granularity of areas and of copy-on-write).
    fn page_size(&self) -> u64;

    /// Allocate a fresh, zero-filled area of `bytes` (page aligned) and
    /// return its base address.
    fn alloc(&self, bytes: u64) -> Result<u64>;

    /// Release the area `[addr, addr + bytes)` previously returned by
    /// [`VmBackend::alloc`] or [`VmBackend::vm_snapshot`].
    fn release(&self, addr: u64, bytes: u64) -> Result<()>;

    /// The paper's custom system call (§4.1, Appendix A): duplicate
    /// `[src, src + bytes)` with copy-on-write semantics into a fresh area
    /// (`dst = None`) or into an existing equally-sized area
    /// (`dst = Some(addr)`, §4.1.3 destination recycling). Returns the
    /// destination address. After the call both views read identically;
    /// a write through either view no longer affects the other.
    fn vm_snapshot(&self, dst: Option<u64>, src: u64, bytes: u64) -> Result<u64>;

    /// Load the 8-byte word at `addr` (aligned; relaxed atomicity — a
    /// racing writer yields either the old or the new word, never a torn
    /// one).
    fn read_u64(&self, addr: u64) -> Result<u64>;

    /// Store the 8-byte word at `addr` (aligned), performing any
    /// copy-on-write the backend's snapshot bookkeeping requires first.
    fn write_u64(&self, addr: u64, value: u64) -> Result<()>;

    /// Copy `buf.len()` words starting at `addr` into `buf` — the block
    /// read underneath tight scan loops.
    fn read_words(&self, addr: u64, buf: &mut [u64]) -> Result<()>;

    /// Copy `words` into memory starting at `addr` (bulk-load path;
    /// performs copy-on-write like [`VmBackend::write_u64`]).
    fn write_words(&self, addr: u64, words: &[u64]) -> Result<()>;

    /// Advise the backend that `[addr, addr + bytes)` is about to be read
    /// front to back (a scan). Real-memory backends forward this to
    /// `madvise(MADV_SEQUENTIAL)` so the kernel reads ahead aggressively;
    /// the simulated kernel has no readahead to steer and ignores it.
    /// Purely a hint — never fails, never changes semantics.
    fn advise_sequential(&self, addr: u64, bytes: u64) {
        let _ = (addr, bytes);
    }

    /// Monotonic counters of the real-OS backend (`vm_snapshot` calls,
    /// copy-on-write splits, `madvise` hints issued), when this backend is
    /// one. `None` on simulated backends — callers use this to surface OS
    /// counters in bench records without downcasting.
    fn os_stats(&self) -> Option<crate::os::OsStatsSnapshot> {
        None
    }

    /// A raw pointer to `[addr, addr + bytes)` when the range is plain,
    /// directly addressable memory (the OS backend). Scans use this to
    /// read frozen snapshot areas straight through the mapping instead of
    /// word-by-word through [`VmBackend::read_u64`]. Returns `None` on
    /// backends that only expose simulated memory (the default).
    ///
    /// The pointee stays mapped for the lifetime of the area; callers may
    /// only *read* through it, and must tolerate concurrent word stores
    /// (which cannot occur on frozen areas — the engine never writes a
    /// snapshot after hand-over).
    fn raw_parts(&self, addr: u64, bytes: u64) -> Option<*const u64> {
        let _ = (addr, bytes);
        None
    }

    /// Short backend identifier for logs and bench records.
    fn name(&self) -> &'static str;
}

impl VmBackend for crate::Space {
    fn page_size(&self) -> u64 {
        crate::Space::page_size(self)
    }

    fn alloc(&self, bytes: u64) -> Result<u64> {
        self.mmap(
            bytes,
            crate::Prot::READ_WRITE,
            crate::Share::Private,
            crate::MapBacking::Anon,
        )
    }

    fn release(&self, addr: u64, bytes: u64) -> Result<()> {
        self.munmap(addr, bytes)
    }

    fn vm_snapshot(&self, dst: Option<u64>, src: u64, bytes: u64) -> Result<u64> {
        crate::Space::vm_snapshot(self, dst, src, bytes)
    }

    fn read_u64(&self, addr: u64) -> Result<u64> {
        crate::Space::read_u64(self, addr)
    }

    fn write_u64(&self, addr: u64, value: u64) -> Result<()> {
        crate::Space::write_u64(self, addr, value)
    }

    fn read_words(&self, addr: u64, buf: &mut [u64]) -> Result<()> {
        crate::Space::read_words(self, addr, buf)
    }

    fn write_words(&self, addr: u64, words: &[u64]) -> Result<()> {
        crate::Space::write_words(self, addr, words)
    }

    fn name(&self) -> &'static str {
        "sim"
    }
}
