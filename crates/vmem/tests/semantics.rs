//! Integration tests for the simulated VM subsystem: demand paging, COW,
//! fork, vm_snapshot, rewiring via main-memory files, and cost accounting.

use anker_vmem::{Kernel, KernelConfig, MapBacking, Prot, Share, VmError};

fn kernel() -> Kernel {
    Kernel::default()
}

const RW: Prot = Prot::READ_WRITE;
const RO: Prot = Prot::READ;

#[test]
fn anon_mapping_reads_zero_and_counts_faults() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let a = s
        .mmap(4 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    let before = k.stats();
    assert_eq!(s.read_u64(a).unwrap(), 0);
    assert_eq!(s.read_u64(a + 3 * ps + 8).unwrap(), 0);
    let d = k.stats().delta_since(&before);
    assert_eq!(d.page_faults, 2);
    // Reading the same pages again faults no more.
    assert_eq!(s.read_u64(a).unwrap(), 0);
    assert_eq!(k.stats().page_faults, 2);
}

#[test]
fn writes_persist_and_are_word_atomic() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let a = s
        .mmap(2 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    for i in 0..(2 * ps / 8) {
        s.write_u64(a + i * 8, i * 7 + 1).unwrap();
    }
    for i in 0..(2 * ps / 8) {
        assert_eq!(s.read_u64(a + i * 8).unwrap(), i * 7 + 1);
    }
}

#[test]
fn read_write_bytes_cross_page() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let a = s
        .mmap(3 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    let data: Vec<u8> = (0..=255).cycle().take(ps as usize + 64).collect();
    // Start near the end of the first page so the write straddles pages.
    s.write_bytes(a + ps - 32, &data).unwrap();
    let mut back = vec![0u8; data.len()];
    s.read_bytes(a + ps - 32, &mut back).unwrap();
    assert_eq!(back, data);
}

#[test]
fn vm_snapshot_isolates_both_directions() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let n = 8;
    let col = s
        .mmap(n * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    for p in 0..n {
        s.write_u64(col + p * ps, 100 + p).unwrap();
    }
    let frames_before = k.frames_in_use();
    let snap = s.vm_snapshot(None, col, n * ps).unwrap();
    // Virtual snapshot: no physical copies yet.
    assert_eq!(k.frames_in_use(), frames_before);
    for p in 0..n {
        assert_eq!(s.read_u64(snap + p * ps).unwrap(), 100 + p);
    }
    // Source writes do not leak into the snapshot.
    s.write_u64(col + 2 * ps, 777).unwrap();
    assert_eq!(s.read_u64(snap + 2 * ps).unwrap(), 102);
    assert_eq!(s.read_u64(col + 2 * ps).unwrap(), 777);
    // Snapshot writes do not leak into the source.
    s.write_u64(snap + 5 * ps, 888).unwrap();
    assert_eq!(s.read_u64(col + 5 * ps).unwrap(), 105);
    // Exactly two COW copies happened.
    assert_eq!(k.frames_in_use(), frames_before + 2);
}

#[test]
fn vm_snapshot_chains() {
    // Snapshot of a snapshot of a snapshot: each layer stays consistent.
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let col = s
        .mmap(2 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    s.write_u64(col, 1).unwrap();
    let s1 = s.vm_snapshot(None, col, 2 * ps).unwrap();
    s.write_u64(col, 2).unwrap();
    let s2 = s.vm_snapshot(None, col, 2 * ps).unwrap();
    s.write_u64(col, 3).unwrap();
    let s3 = s.vm_snapshot(None, s2, 2 * ps).unwrap();
    assert_eq!(s.read_u64(s1).unwrap(), 1);
    assert_eq!(s.read_u64(s2).unwrap(), 2);
    assert_eq!(s.read_u64(s3).unwrap(), 2);
    assert_eq!(s.read_u64(col).unwrap(), 3);
}

#[test]
fn vm_snapshot_into_recycled_destination() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let col = s
        .mmap(4 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    s.write_u64(col, 42).unwrap();
    let old = s.vm_snapshot(None, col, 4 * ps).unwrap();
    assert_eq!(s.read_u64(old).unwrap(), 42);
    s.write_u64(col, 43).unwrap();
    // Recycle the old snapshot's area (§4.1.3).
    let frames_before = k.frames_in_use();
    let dst = s.vm_snapshot(Some(old), col, 4 * ps).unwrap();
    assert_eq!(dst, old);
    assert_eq!(s.read_u64(dst).unwrap(), 43);
    // Recycling freed the old COW frame the stale snapshot pinned.
    assert!(k.frames_in_use() <= frames_before);
}

#[test]
fn vm_snapshot_errors() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let col = s
        .mmap(4 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    // Unaligned.
    assert!(matches!(
        s.vm_snapshot(None, col + 1, ps),
        Err(VmError::Misaligned { .. })
    ));
    // Source not mapped.
    assert!(matches!(
        s.vm_snapshot(None, col + 4 * ps, ps),
        Err(VmError::NotMapped { .. })
    ));
    // Source only partially mapped.
    assert!(matches!(
        s.vm_snapshot(None, col, 8 * ps),
        Err(VmError::NotMapped { .. })
    ));
    // Destination overlaps source.
    assert!(matches!(
        s.vm_snapshot(Some(col + ps), col, 2 * ps),
        Err(VmError::BadDestination { .. })
    ));
    // Destination not allocated.
    let far = col + 100 * ps;
    assert!(matches!(
        s.vm_snapshot(Some(far), col, 2 * ps),
        Err(VmError::BadDestination { .. })
    ));
    // Zero length.
    assert!(matches!(
        s.vm_snapshot(None, col, 0),
        Err(VmError::InvalidArgument(_))
    ));
}

#[test]
fn vm_snapshot_partial_column_splits_borders() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let col = s
        .mmap(8 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    for p in 0..8 {
        s.write_u64(col + p * ps, p).unwrap();
    }
    assert_eq!(s.vma_count_in(col, 8 * ps), 1);
    // Snapshot only the middle 4 pages.
    let snap = s.vm_snapshot(None, col + 2 * ps, 4 * ps).unwrap();
    for p in 0..4 {
        assert_eq!(s.read_u64(snap + p * ps).unwrap(), p + 2);
    }
    // Border splits: the source area is now described by 3 VMAs.
    assert_eq!(s.vma_count_in(col, 8 * ps), 3);
    // Pages outside the snapshot range stay writable in place (no COW).
    let before = k.stats();
    s.write_u64(col, 100).unwrap();
    assert_eq!(k.stats().delta_since(&before).cow_faults, 0);
    // Pages inside the range are COW.
    let before = k.stats();
    s.write_u64(col + 3 * ps, 300).unwrap();
    assert_eq!(k.stats().delta_since(&before).cow_faults, 1);
    assert_eq!(s.read_u64(snap + ps).unwrap(), 3);
}

#[test]
fn fork_duplicates_address_space() {
    let k = kernel();
    let parent = k.create_space();
    let ps = parent.page_size();
    let a = parent
        .mmap(4 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    parent.write_u64(a, 11).unwrap();
    parent.write_u64(a + ps, 22).unwrap();
    let child = parent.fork().unwrap();
    // Same virtual addresses, same contents.
    assert_eq!(child.read_u64(a).unwrap(), 11);
    assert_eq!(child.read_u64(a + ps).unwrap(), 22);
    // COW isolation in both directions.
    parent.write_u64(a, 99).unwrap();
    child.write_u64(a + ps, 55).unwrap();
    assert_eq!(child.read_u64(a).unwrap(), 11);
    assert_eq!(parent.read_u64(a + ps).unwrap(), 22);
    assert_eq!(parent.read_u64(a).unwrap(), 99);
    assert_eq!(child.read_u64(a + ps).unwrap(), 55);
}

#[test]
fn fork_shares_shared_file_mappings() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let f = k.create_file(4);
    let a = s
        .mmap(4 * ps, RW, Share::Shared, MapBacking::File(&f, 0))
        .unwrap();
    s.write_u64(a, 1).unwrap();
    let child = s.fork().unwrap();
    // Shared mapping: writes remain visible across the fork in both
    // directions.
    child.write_u64(a, 2).unwrap();
    assert_eq!(s.read_u64(a).unwrap(), 2);
    s.write_u64(a + ps, 3).unwrap();
    assert_eq!(child.read_u64(a + ps).unwrap(), 3);
}

#[test]
fn mprotect_faults_then_allows_after_upgrade() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let a = s
        .mmap(2 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    s.write_u64(a, 5).unwrap();
    s.mprotect(a, 2 * ps, RO).unwrap();
    // Reads fine, writes fault.
    assert_eq!(s.read_u64(a).unwrap(), 5);
    assert!(matches!(
        s.write_u64(a, 6),
        Err(VmError::ProtectionFault { .. })
    ));
    assert_eq!(k.stats().protection_faults, 1);
    // Upgrade back and write.
    s.mprotect(a, 2 * ps, RW).unwrap();
    s.write_u64(a, 6).unwrap();
    assert_eq!(s.read_u64(a).unwrap(), 6);
}

#[test]
fn mprotect_partial_splits_and_remerges() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let a = s
        .mmap(8 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    assert_eq!(s.vma_count_in(a, 8 * ps), 1);
    s.mprotect(a + 2 * ps, 2 * ps, RO).unwrap();
    assert_eq!(s.vma_count_in(a, 8 * ps), 3);
    // Restoring uniform protection merges the VMAs back together.
    s.mprotect(a + 2 * ps, 2 * ps, RW).unwrap();
    assert_eq!(s.vma_count_in(a, 8 * ps), 1);
}

#[test]
fn mprotect_requires_full_coverage() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let a = s
        .mmap(2 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    assert!(matches!(
        s.mprotect(a, 4 * ps, RO),
        Err(VmError::NotMapped { .. })
    ));
}

#[test]
fn shared_file_mapping_round_trips_through_file() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let f = k.create_file(8);
    let a = s
        .mmap(4 * ps, RW, Share::Shared, MapBacking::File(&f, 0))
        .unwrap();
    let b = s
        .mmap(4 * ps, RW, Share::Shared, MapBacking::File(&f, 0))
        .unwrap();
    s.write_u64(a + ps, 1234).unwrap();
    // Second mapping of the same file offset sees the write.
    assert_eq!(s.read_u64(b + ps).unwrap(), 1234);
    // Mapping at a different offset does not.
    let c = s
        .mmap(4 * ps, RW, Share::Shared, MapBacking::File(&f, 4 * ps))
        .unwrap();
    assert_eq!(s.read_u64(c + ps).unwrap(), 0);
}

#[test]
fn private_file_mapping_cow() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let f = k.create_file(2);
    let shared = s
        .mmap(2 * ps, RW, Share::Shared, MapBacking::File(&f, 0))
        .unwrap();
    s.write_u64(shared, 10).unwrap();
    let private = s
        .mmap(2 * ps, RW, Share::Private, MapBacking::File(&f, 0))
        .unwrap();
    assert_eq!(s.read_u64(private).unwrap(), 10);
    // A private write diverges from the file...
    s.write_u64(private, 20).unwrap();
    assert_eq!(s.read_u64(shared).unwrap(), 10);
    // ...and later file writes are not seen through the COW'd page.
    s.write_u64(shared, 30).unwrap();
    assert_eq!(s.read_u64(private).unwrap(), 20);
}

#[test]
fn file_access_beyond_end_is_bus_error() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let f = k.create_file(1);
    let a = s
        .mmap(2 * ps, RW, Share::Shared, MapBacking::File(&f, 0))
        .unwrap();
    assert_eq!(s.read_u64(a).unwrap(), 0);
    assert!(matches!(
        s.read_u64(a + ps),
        Err(VmError::BeyondFileEnd { .. })
    ));
    // Growing the file makes the page accessible.
    f.truncate(2);
    assert_eq!(s.read_u64(a + ps).unwrap(), 0);
}

#[test]
fn rewiring_scenario_fragments_vmas() {
    // The user-space rewiring pattern from §3.2.3: a column mapped to a
    // main-memory file; "COW" performed manually by re-mapping one page to a
    // fresh file offset.
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let pages = 16u64;
    let f = k.create_file(pages + 8);
    let col = s
        .mmap(pages * ps, RW, Share::Shared, MapBacking::File(&f, 0))
        .unwrap();
    for p in 0..pages {
        s.write_u64(col + p * ps, p).unwrap();
    }
    // Snapshot: a second view of the same file range.
    let snap = s
        .mmap(pages * ps, RO, Share::Shared, MapBacking::File(&f, 0))
        .unwrap();
    assert_eq!(s.vma_count_in(col, pages * ps), 1);
    // Rewire page 5 of the column to the free page at file offset `pages`.
    f.copy_page(5, pages).unwrap();
    s.mmap_at(
        col + 5 * ps,
        ps,
        RW,
        Share::Shared,
        MapBacking::File(&f, pages * ps),
    )
    .unwrap();
    s.write_u64(col + 5 * ps, 999).unwrap();
    // The snapshot still sees the old value; the column sees the new one.
    assert_eq!(s.read_u64(snap + 5 * ps).unwrap(), 5);
    assert_eq!(s.read_u64(col + 5 * ps).unwrap(), 999);
    // The column is now fragmented into 3 VMAs (before / rewired / after).
    assert_eq!(s.vma_count_in(col, pages * ps), 3);
}

#[test]
fn munmap_frees_frames_and_splits() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let a = s
        .mmap(8 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    for p in 0..8 {
        s.write_u64(a + p * ps, p).unwrap();
    }
    assert_eq!(k.frames_in_use(), 8);
    s.munmap(a + 2 * ps, 4 * ps).unwrap();
    assert_eq!(k.frames_in_use(), 4);
    assert_eq!(s.vma_count_in(a, 8 * ps), 2);
    assert!(matches!(
        s.read_u64(a + 2 * ps),
        Err(VmError::NotMapped { .. })
    ));
    assert_eq!(s.read_u64(a + 7 * ps).unwrap(), 7);
}

#[test]
fn dropping_space_releases_frames() {
    let k = kernel();
    {
        let s = k.create_space();
        let ps = s.page_size();
        let a = s
            .mmap(16 * ps, RW, Share::Private, MapBacking::Anon)
            .unwrap();
        for p in 0..16 {
            s.write_u64(a + p * ps, p).unwrap();
        }
        assert_eq!(k.frames_in_use(), 16);
    }
    assert_eq!(k.frames_in_use(), 0);
}

#[test]
fn dropping_snapshot_releases_only_unshared_frames() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let col = s
        .mmap(8 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    for p in 0..8 {
        s.write_u64(col + p * ps, p).unwrap();
    }
    let snap = s.vm_snapshot(None, col, 8 * ps).unwrap();
    s.write_u64(col, 100).unwrap(); // one COW
    assert_eq!(k.frames_in_use(), 9);
    s.munmap(snap, 8 * ps).unwrap();
    // The snapshot's un-COW'd pages were shared; only the pinned old copy of
    // page 0 is freed.
    assert_eq!(k.frames_in_use(), 8);
    // After the snapshot is gone, writes reclaim pages in place (no COW).
    let before = k.stats();
    s.write_u64(col + ps, 200).unwrap();
    let d = k.stats().delta_since(&before);
    assert_eq!(d.cow_faults, 1);
    assert_eq!(d.pages_copied, 0, "sole owner reclaims in place");
}

#[test]
fn adjacent_fixed_mappings_merge() {
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let base = 0x4000_0000;
    s.mmap_at(base, 2 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    s.mmap_at(base + 2 * ps, 2 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    assert_eq!(s.vma_count_in(base, 4 * ps), 1, "anon neighbours merge");
    // Different protection does not merge.
    s.mmap_at(base + 4 * ps, ps, RO, Share::Private, MapBacking::Anon)
        .unwrap();
    assert_eq!(s.vma_count_in(base, 5 * ps), 2);
}

#[test]
fn vm_snapshot_cost_beats_rewiring_at_high_fragmentation() {
    // Micro version of Figure 5a's crossover: with many VMAs per column,
    // one vm_snapshot call is far cheaper than per-VMA rewiring mmaps.
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let pages = 512u64;
    let f = k.create_file(2 * pages);
    let col = s
        .mmap(pages * ps, RW, Share::Shared, MapBacking::File(&f, 0))
        .unwrap();
    // Fragment: rewire every second page.
    for p in (0..pages).step_by(2) {
        s.mmap_at(
            col + p * ps,
            ps,
            RW,
            Share::Shared,
            MapBacking::File(&f, (pages + p) * ps),
        )
        .unwrap();
    }
    let n_vmas = s.vma_count_in(col, pages * ps);
    assert!(n_vmas > 500, "expected heavy fragmentation, got {n_vmas}");

    // Rewiring-style snapshot: one mmap per VMA.
    let before = k.virtual_ns();
    let dst = s
        .mmap(pages * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    for vma in s.vmas_in(col, pages * ps) {
        let (file_off, len) = match &vma.backing {
            anker_vmem::Backing::File { offset, .. } => (*offset, vma.len()),
            _ => unreachable!(),
        };
        s.mmap_at(
            dst + (vma.start - col),
            len,
            RO,
            Share::Shared,
            MapBacking::File(&f, file_off),
        )
        .unwrap();
    }
    let rewiring_cost = k.virtual_ns() - before;

    // vm_snapshot of the same fragmented area.
    let before = k.virtual_ns();
    s.vm_snapshot(None, col, pages * ps).unwrap();
    let vmsnap_cost = k.virtual_ns() - before;

    assert!(
        vmsnap_cost * 5 < rewiring_cost,
        "vm_snapshot ({vmsnap_cost} ns) should be far cheaper than rewiring ({rewiring_cost} ns)"
    );
}

#[test]
fn huge_pages_coarser_cow() {
    // §3.3: with huge pages, a single write COWs the whole huge page —
    // more bytes copied per fault.
    let k4 = Kernel::default();
    let k2m = Kernel::new(KernelConfig {
        page_size: 2 << 20,
        max_phys_bytes: 1 << 30,
        ..Default::default()
    });
    for (k, pages) in [(&k4, 512u64), (&k2m, 1u64)] {
        let s = k.create_space();
        let ps = s.page_size();
        let col = s
            .mmap(pages * ps, RW, Share::Private, MapBacking::Anon)
            .unwrap();
        for p in 0..pages {
            s.write_u64(col + p * ps, 1).unwrap();
        }
        let snap = s.vm_snapshot(None, col, pages * ps).unwrap();
        s.write_u64(col, 2).unwrap();
        assert_eq!(s.read_u64(snap).unwrap(), 1);
    }
    // Same 2 MiB of data; the huge-page kernel copied it in one fault.
    assert_eq!(k4.stats().cow_faults, 1);
    assert_eq!(k2m.stats().cow_faults, 1);
    // Virtual cost of the huge-page COW is ~512x the 4 KiB one.
    let c4 = k4.cost_model().page_copy_for(4096);
    let c2m = k2m.cost_model().page_copy_for(2 << 20);
    assert!((c2m / c4 - 512.0).abs() < 1.0);
}

#[test]
fn concurrent_faults_on_shared_snapshot() {
    // Many threads writing distinct pages of a snapshotted column must each
    // trigger exactly one COW and never corrupt the snapshot.
    let k = kernel();
    let s = k.create_space();
    let ps = s.page_size();
    let pages = 256u64;
    let col = s
        .mmap(pages * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    for p in 0..pages {
        s.write_u64(col + p * ps, p).unwrap();
    }
    let snap = s.vm_snapshot(None, col, pages * ps).unwrap();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let s = s.clone();
            scope.spawn(move || {
                for p in (t..pages).step_by(4) {
                    s.write_u64(col + p * ps, 1000 + p).unwrap();
                }
            });
        }
    });
    for p in 0..pages {
        assert_eq!(s.read_u64(snap + p * ps).unwrap(), p, "snapshot corrupted");
        assert_eq!(s.read_u64(col + p * ps).unwrap(), 1000 + p);
    }
    assert_eq!(k.stats().cow_faults, pages);
}
