//! Property-based tests: the simulator is compared against simple oracles
//! under randomized operation sequences.

use anker_vmem::{Kernel, MapBacking, Prot, Share, VmError};
use proptest::prelude::*;

const PAGES: u64 = 32;

/// Operations over one base column and a rolling set of snapshots.
#[derive(Debug, Clone)]
enum Op {
    /// Write `value` into word `word` of page `page` of the base column.
    Write { page: u64, word: u64, value: u64 },
    /// Take a vm_snapshot of the base column.
    Snapshot,
    /// Drop the oldest live snapshot (if any).
    DropOldest,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..PAGES, 0..8u64, any::<u64>())
            .prop_map(|(page, word, value)| Op::Write { page, word, value }),
        1 => Just(Op::Snapshot),
        1 => Just(Op::DropOldest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every snapshot must forever read exactly the base column's content at
    /// the moment the snapshot was taken, no matter how the base mutates
    /// afterwards; the base must always reflect all its writes.
    #[test]
    fn snapshots_are_frozen_points_in_time(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let k = Kernel::default();
        let s = k.create_space();
        let ps = s.page_size();
        let col = s.mmap(PAGES * ps, Prot::READ_WRITE, Share::Private, MapBacking::Anon).unwrap();

        // Oracle: plain vectors.
        let mut shadow = vec![0u64; (PAGES * 8) as usize];
        let mut snaps: Vec<(u64, Vec<u64>)> = Vec::new();

        for op in &ops {
            match *op {
                Op::Write { page, word, value } => {
                    s.write_u64(col + page * ps + word * 8, value).unwrap();
                    shadow[(page * 8 + word) as usize] = value;
                }
                Op::Snapshot => {
                    let addr = s.vm_snapshot(None, col, PAGES * ps).unwrap();
                    snaps.push((addr, shadow.clone()));
                }
                Op::DropOldest => {
                    if !snaps.is_empty() {
                        let (addr, _) = snaps.remove(0);
                        s.munmap(addr, PAGES * ps).unwrap();
                    }
                }
            }
        }

        // Verify the base column.
        for page in 0..PAGES {
            for word in 0..8 {
                let got = s.read_u64(col + page * ps + word * 8).unwrap();
                prop_assert_eq!(got, shadow[(page * 8 + word) as usize]);
            }
        }
        // Verify every live snapshot against its point-in-time oracle.
        for (addr, frozen) in &snaps {
            for page in 0..PAGES {
                for word in 0..8 {
                    let got = s.read_u64(addr + page * ps + word * 8).unwrap();
                    prop_assert_eq!(got, frozen[(page * 8 + word) as usize],
                        "snapshot at {:#x} diverged at page {} word {}", addr, page, word);
                }
            }
        }
        // No frame leaks: dropping everything returns all frames.
        s.munmap(col, PAGES * ps).unwrap();
        for (addr, _) in &snaps {
            s.munmap(*addr, PAGES * ps).unwrap();
        }
        prop_assert_eq!(k.frames_in_use(), 0, "frame leak detected");
    }
}

/// Randomized VMA-tree stress: fixed mappings, unmappings, and protection
/// changes must preserve the tree invariants (sorted, non-overlapping,
/// page-aligned) and access semantics.
#[derive(Debug, Clone)]
enum VmaOp {
    MapFixed { page: u64, pages: u64, write: bool },
    Unmap { page: u64, pages: u64 },
    Protect { page: u64, pages: u64, write: bool },
    Touch { page: u64 },
}

fn vma_op_strategy() -> impl Strategy<Value = VmaOp> {
    let span = 0..48u64;
    prop_oneof![
        3 => (span.clone(), 1..8u64, any::<bool>())
            .prop_map(|(page, pages, write)| VmaOp::MapFixed { page, pages, write }),
        2 => (span.clone(), 1..8u64).prop_map(|(page, pages)| VmaOp::Unmap { page, pages }),
        2 => (span.clone(), 1..8u64, any::<bool>())
            .prop_map(|(page, pages, write)| VmaOp::Protect { page, pages, write }),
        3 => span.prop_map(|page| VmaOp::Touch { page }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vma_tree_invariants_hold(ops in proptest::collection::vec(vma_op_strategy(), 1..100)) {
        let k = Kernel::default();
        let s = k.create_space();
        let ps = s.page_size();
        let base = 0x4000_0000u64;
        // Oracle: per-page protection (None = unmapped).
        let mut pages_model: Vec<Option<bool>> = vec![None; 64];

        for op in &ops {
            match *op {
                VmaOp::MapFixed { page, pages, write } => {
                    let prot = if write { Prot::READ_WRITE } else { Prot::READ };
                    s.mmap_at(base + page * ps, pages * ps, prot, Share::Private, MapBacking::Anon).unwrap();
                    for p in page..page + pages {
                        pages_model[p as usize] = Some(write);
                    }
                }
                VmaOp::Unmap { page, pages } => {
                    s.munmap(base + page * ps, pages * ps).unwrap();
                    for p in page..page + pages {
                        pages_model[p as usize] = None;
                    }
                }
                VmaOp::Protect { page, pages, write } => {
                    let prot = if write { Prot::READ_WRITE } else { Prot::READ };
                    let covered = (page..page + pages).all(|p| pages_model[p as usize].is_some());
                    let r = s.mprotect(base + page * ps, pages * ps, prot);
                    if covered {
                        prop_assert!(r.is_ok(), "mprotect over mapped range failed: {:?}", r);
                        for p in page..page + pages {
                            pages_model[p as usize] = Some(write);
                        }
                    } else {
                        prop_assert!(matches!(r, Err(VmError::NotMapped { .. })), "expected NotMapped, got {:?}", r);
                    }
                }
                VmaOp::Touch { page } => {
                    let addr = base + page * ps;
                    match pages_model[page as usize] {
                        None => {
                            let r = s.read_u64(addr);
                            prop_assert!(matches!(r, Err(VmError::NotMapped { .. })), "expected NotMapped, got {:?}", r);
                        }
                        Some(writable) => {
                            prop_assert!(s.read_u64(addr).is_ok());
                            let w = s.write_u64(addr, 1);
                            if writable {
                                prop_assert!(w.is_ok());
                            } else {
                                prop_assert!(matches!(w, Err(VmError::ProtectionFault { .. })), "expected ProtectionFault, got {:?}", w);
                            }
                        }
                    }
                }
            }
        }

        // Tree invariants.
        let vmas = s.vmas_in(base, 64 * ps);
        for w in vmas.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "overlapping or unsorted VMAs");
        }
        for v in &vmas {
            prop_assert_eq!(v.start % ps, 0);
            prop_assert_eq!(v.end % ps, 0);
            prop_assert!(v.start < v.end);
        }
        // Per-page agreement between model and tree.
        for p in 0..64u64 {
            let addr = base + p * ps;
            let in_vma = vmas.iter().any(|v| v.contains(addr));
            prop_assert_eq!(in_vma, pages_model[p as usize].is_some(),
                "page {} mapping disagreement", p);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// fork() equals vm_snapshot of everything: the child sees the parent's
    /// state at fork time regardless of later parent writes, and vice versa.
    #[test]
    fn fork_isolation(
        pre in proptest::collection::vec((0..16u64, any::<u64>()), 1..30),
        post_parent in proptest::collection::vec((0..16u64, any::<u64>()), 1..30),
        post_child in proptest::collection::vec((0..16u64, any::<u64>()), 1..30),
    ) {
        let k = Kernel::default();
        let s = k.create_space();
        let ps = s.page_size();
        let a = s.mmap(16 * ps, Prot::READ_WRITE, Share::Private, MapBacking::Anon).unwrap();
        let mut model = vec![0u64; 16];
        for &(p, v) in &pre {
            s.write_u64(a + p * ps, v).unwrap();
            model[p as usize] = v;
        }
        let child = s.fork().unwrap();
        let mut parent_model = model.clone();
        let mut child_model = model;
        for &(p, v) in &post_parent {
            s.write_u64(a + p * ps, v).unwrap();
            parent_model[p as usize] = v;
        }
        for &(p, v) in &post_child {
            child.write_u64(a + p * ps, v).unwrap();
            child_model[p as usize] = v;
        }
        for p in 0..16u64 {
            prop_assert_eq!(s.read_u64(a + p * ps).unwrap(), parent_model[p as usize]);
            prop_assert_eq!(child.read_u64(a + p * ps).unwrap(), child_model[p as usize]);
        }
    }
}
