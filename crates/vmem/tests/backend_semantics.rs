//! Backend-contract semantics suite, run against **both** [`VmBackend`]
//! implementations: the simulated kernel and (on Linux) the real-OS memfd
//! backend.
//!
//! The full `semantics.rs` / `edge_cases.rs` suites exercise the simulated
//! kernel's complete syscall surface (`mprotect`, `fork`, file truncation,
//! sub-area snapshots) which the OS backend intentionally does not expose;
//! everything the *engine* relies on — allocation, word and block access,
//! `vm_snapshot` isolation in both directions, destination recycling,
//! release/re-use — is specified here once and must hold identically on
//! both substrates.

use anker_vmem::{Kernel, KernelConfig, OsBackend, VmBackend, VmError};

fn sim() -> impl VmBackend {
    Kernel::new(KernelConfig::default()).create_space()
}

/// Run `f` against every backend available on this platform.
fn for_each_backend(f: impl Fn(&dyn VmBackend)) {
    let s = sim();
    f(&s);
    if cfg!(target_os = "linux") {
        let os = OsBackend::new().expect("OS backend available on Linux");
        f(&os);
    }
}

#[test]
fn alloc_reads_zero_and_round_trips() {
    for_each_backend(|b| {
        let ps = b.page_size();
        let a = b.alloc(2 * ps).unwrap();
        assert_eq!(b.read_u64(a).unwrap(), 0, "{}: fresh area zeroed", b.name());
        assert_eq!(b.read_u64(a + 2 * ps - 8).unwrap(), 0);
        for i in 0..16u64 {
            b.write_u64(a + i * 8, i * 7 + 1).unwrap();
        }
        for i in 0..16u64 {
            assert_eq!(b.read_u64(a + i * 8).unwrap(), i * 7 + 1);
        }
        b.release(a, 2 * ps).unwrap();
    });
}

#[test]
fn block_reads_and_writes_cross_pages() {
    for_each_backend(|b| {
        let ps = b.page_size();
        let a = b.alloc(3 * ps).unwrap();
        let n = (3 * ps / 8) as usize;
        let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        b.write_words(a, &data).unwrap();
        let mut back = vec![0u64; n];
        b.read_words(a, &mut back).unwrap();
        assert_eq!(back, data, "{}: block round trip", b.name());
        // A misaligned sub-range still reads correctly (straddling pages).
        let off = ps - 32;
        let mut mid = vec![0u64; 16];
        b.read_words(a + off, &mut mid).unwrap();
        assert_eq!(&mid[..], &data[(off / 8) as usize..(off / 8) as usize + 16]);
        b.release(a, 3 * ps).unwrap();
    });
}

#[test]
fn vm_snapshot_isolates_both_directions() {
    for_each_backend(|b| {
        let ps = b.page_size();
        let a = b.alloc(4 * ps).unwrap();
        for p in 0..4u64 {
            b.write_u64(a + p * ps, 100 + p).unwrap();
        }
        let snap = b.vm_snapshot(None, a, 4 * ps).unwrap();
        for p in 0..4u64 {
            assert_eq!(b.read_u64(snap + p * ps).unwrap(), 100 + p);
        }
        // Source writes do not reach the snapshot...
        b.write_u64(a + ps, 7).unwrap();
        assert_eq!(b.read_u64(snap + ps).unwrap(), 101, "{}", b.name());
        assert_eq!(b.read_u64(a + ps).unwrap(), 7);
        // ...and snapshot writes do not reach the source.
        b.write_u64(snap + 2 * ps, 8).unwrap();
        assert_eq!(b.read_u64(a + 2 * ps).unwrap(), 102, "{}", b.name());
        assert_eq!(b.read_u64(snap + 2 * ps).unwrap(), 8);
        b.release(snap, 4 * ps).unwrap();
        b.release(a, 4 * ps).unwrap();
    });
}

#[test]
fn chained_snapshots_stay_frozen() {
    for_each_backend(|b| {
        let ps = b.page_size();
        let a = b.alloc(ps).unwrap();
        b.write_u64(a, 1).unwrap();
        let s1 = b.vm_snapshot(None, a, ps).unwrap();
        b.write_u64(a, 2).unwrap();
        let s2 = b.vm_snapshot(None, a, ps).unwrap();
        b.write_u64(a, 3).unwrap();
        // A snapshot of a snapshot also works (areas are areas).
        let s3 = b.vm_snapshot(None, s1, ps).unwrap();
        assert_eq!(b.read_u64(s1).unwrap(), 1, "{}", b.name());
        assert_eq!(b.read_u64(s2).unwrap(), 2);
        assert_eq!(b.read_u64(s3).unwrap(), 1);
        assert_eq!(b.read_u64(a).unwrap(), 3);
        for s in [s1, s2, s3] {
            b.release(s, ps).unwrap();
        }
        b.release(a, ps).unwrap();
    });
}

#[test]
fn recycled_destination_matches_source_and_isolates() {
    for_each_backend(|b| {
        let ps = b.page_size();
        let src = b.alloc(2 * ps).unwrap();
        b.write_u64(src, 11).unwrap();
        b.write_u64(src + ps, 22).unwrap();
        let old = b.alloc(2 * ps).unwrap();
        b.write_u64(old, 99).unwrap();
        let d = b.vm_snapshot(Some(old), src, 2 * ps).unwrap();
        assert_eq!(d, old, "{}: recycling reuses the destination", b.name());
        assert_eq!(b.read_u64(d).unwrap(), 11);
        assert_eq!(b.read_u64(d + ps).unwrap(), 22);
        // Post-recycle writes still isolate.
        b.write_u64(src, 12).unwrap();
        assert_eq!(b.read_u64(d).unwrap(), 11, "{}", b.name());
        b.release(d, 2 * ps).unwrap();
        b.release(src, 2 * ps).unwrap();
    });
}

#[test]
fn errors_on_bad_requests() {
    for_each_backend(|b| {
        let ps = b.page_size();
        assert!(matches!(b.alloc(ps + 8), Err(VmError::Misaligned { .. })));
        assert!(b.alloc(0).is_err());
        assert!(b.vm_snapshot(None, 0x10, ps).is_err(), "{}", b.name());
        let a = b.alloc(ps).unwrap();
        assert!(
            b.vm_snapshot(Some(a), a, ps).is_err(),
            "{}: source as destination must be refused",
            b.name()
        );
        b.release(a, ps).unwrap();
    });
}

#[test]
fn released_areas_do_not_leak_into_fresh_allocations() {
    for_each_backend(|b| {
        let ps = b.page_size();
        let a = b.alloc(2 * ps).unwrap();
        for i in 0..(2 * ps / 8) {
            b.write_u64(a + i * 8, u64::MAX).unwrap();
        }
        b.release(a, 2 * ps).unwrap();
        let c = b.alloc(2 * ps).unwrap();
        for i in 0..(2 * ps / 8) {
            assert_eq!(b.read_u64(c + i * 8).unwrap(), 0, "{}: zeroed", b.name());
        }
        b.release(c, 2 * ps).unwrap();
    });
}

#[cfg(target_os = "linux")]
#[test]
fn os_raw_parts_agree_with_word_reads() {
    let b = OsBackend::new().unwrap();
    let ps = b.page_size();
    let a = b.alloc(ps).unwrap();
    for i in 0..(ps / 8) {
        b.write_u64(a + i * 8, i + 1).unwrap();
    }
    let snap = b.vm_snapshot(None, a, ps).unwrap();
    let p = b
        .raw_parts(snap, ps)
        .expect("OS backend exposes raw memory");
    for i in 0..(ps / 8) as usize {
        // SAFETY(provenance: p, snap, bounds: ps, i): in-bounds of the
        // frozen snapshot mapping, which stays live for the whole test.
        assert_eq!(
            unsafe { *p.add(i) },
            b.read_u64(snap + i as u64 * 8).unwrap()
        );
    }
    // The simulated kernel never exposes raw parts.
    let s = sim();
    let sa = s.alloc(ps).unwrap();
    assert!(s.raw_parts(sa, ps).is_none());
}
