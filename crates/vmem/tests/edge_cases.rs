//! Edge-case tests of the simulated VM subsystem: partial-overlap fixed
//! mappings, file truncation under live mappings, shared-mapping
//! `vm_snapshot`, and cost-accounting invariants.

use anker_vmem::{Kernel, MapBacking, Prot, Share, VmError};

const RW: Prot = Prot::READ_WRITE;
const RO: Prot = Prot::READ;

#[test]
fn map_fixed_replaces_partial_overlap() {
    let k = Kernel::default();
    let s = k.create_space();
    let ps = s.page_size();
    let base = 0x7000_0000u64;
    s.mmap_at(base, 4 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    for p in 0..4 {
        s.write_u64(base + p * ps, 100 + p).unwrap();
    }
    // Replace the middle two pages with a fresh anonymous mapping.
    s.mmap_at(base + ps, 2 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    // Replaced pages read zero again; the borders survive.
    assert_eq!(s.read_u64(base).unwrap(), 100);
    assert_eq!(s.read_u64(base + ps).unwrap(), 0);
    assert_eq!(s.read_u64(base + 2 * ps).unwrap(), 0);
    assert_eq!(s.read_u64(base + 3 * ps).unwrap(), 103);
    // The old frames of the replaced pages were released.
    assert_eq!(k.frames_in_use(), 2 + 2);
}

#[test]
fn file_truncate_under_live_mapping() {
    let k = Kernel::default();
    let s = k.create_space();
    let ps = s.page_size();
    let f = k.create_file(4);
    let a = s
        .mmap(4 * ps, RW, Share::Shared, MapBacking::File(&f, 0))
        .unwrap();
    for p in 0..4 {
        s.write_u64(a + p * ps, p + 1).unwrap();
    }
    // Shrink the file to 2 pages: mapped PTEs keep their frames (like a
    // real memfd), but unmapped future access to the cut region is SIGBUS.
    f.truncate(2);
    assert_eq!(s.read_u64(a + 3 * ps).unwrap(), 4, "resident PTE survives");
    let b = s
        .mmap(4 * ps, RW, Share::Shared, MapBacking::File(&f, 0))
        .unwrap();
    assert_eq!(s.read_u64(b).unwrap(), 1);
    assert!(matches!(
        s.read_u64(b + 2 * ps),
        Err(VmError::BeyondFileEnd { .. })
    ));
    // Growing back exposes fresh zero pages (old frames were released).
    f.truncate(4);
    assert_eq!(s.read_u64(b + 2 * ps).unwrap(), 0);
}

#[test]
fn vm_snapshot_of_shared_file_mapping_shares_writes() {
    // Appendix A step 6: "If VMA is shared, nothing more has to be done" —
    // the duplicate still observes file writes, unlike a private snapshot.
    let k = Kernel::default();
    let s = k.create_space();
    let ps = s.page_size();
    let f = k.create_file(2);
    let a = s
        .mmap(2 * ps, RW, Share::Shared, MapBacking::File(&f, 0))
        .unwrap();
    s.write_u64(a, 5).unwrap();
    let dup = s.vm_snapshot(None, a, 2 * ps).unwrap();
    assert_eq!(s.read_u64(dup).unwrap(), 5);
    // Shared semantics: later writes remain visible through the duplicate.
    s.write_u64(a, 6).unwrap();
    assert_eq!(s.read_u64(dup).unwrap(), 6);
    s.write_u64(dup + ps, 7).unwrap();
    assert_eq!(s.read_u64(a + ps).unwrap(), 7);
}

#[test]
fn vm_snapshot_of_mixed_private_and_shared_range() {
    let k = Kernel::default();
    let s = k.create_space();
    let ps = s.page_size();
    let f = k.create_file(2);
    let base = 0x6000_0000u64;
    s.mmap_at(base, 2 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    s.mmap_at(
        base + 2 * ps,
        2 * ps,
        RW,
        Share::Shared,
        MapBacking::File(&f, 0),
    )
    .unwrap();
    s.write_u64(base, 1).unwrap();
    s.write_u64(base + 2 * ps, 2).unwrap();
    let snap = s.vm_snapshot(None, base, 4 * ps).unwrap();
    // Private part froze...
    s.write_u64(base, 10).unwrap();
    assert_eq!(s.read_u64(snap).unwrap(), 1);
    // ...the shared part tracks the file.
    s.write_u64(base + 2 * ps, 20).unwrap();
    assert_eq!(s.read_u64(snap + 2 * ps).unwrap(), 20);
}

#[test]
fn cost_accounting_matches_structural_counts() {
    let k = Kernel::default();
    let s = k.create_space();
    let ps = s.page_size();
    let col = s
        .mmap(64 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    for p in 0..64 {
        s.write_u64(col + p * ps, p).unwrap();
    }
    let before = k.stats();
    let snap = s.vm_snapshot(None, col, 64 * ps).unwrap();
    let d = k.stats().delta_since(&before);
    assert_eq!(d.vm_snapshot_calls, 1);
    assert_eq!(d.vmas_copied, 1);
    assert_eq!(d.ptes_copied, 64);
    // Charged virtual time: syscall + 1 VMA + 64 PTEs (within rounding).
    let cost = k.cost_model();
    let expected = cost.syscall_entry + cost.vma_copy + 64.0 * cost.pte_copy;
    assert!(
        (d.virtual_ns as f64 - expected).abs() <= 2.0,
        "charged {} vs expected {expected}",
        d.virtual_ns
    );
    // One COW write charges one fault + one page copy.
    let before = k.stats();
    s.write_u64(col, 999).unwrap();
    let d = k.stats().delta_since(&before);
    assert_eq!(d.cow_faults, 1);
    assert_eq!(d.pages_copied, 1);
    let expected = cost.page_fault + cost.page_copy_for(ps as usize);
    assert!((d.virtual_ns as f64 - expected).abs() <= 2.0);
    s.munmap(snap, 64 * ps).unwrap();
}

#[test]
fn fork_then_vm_snapshot_in_child() {
    // The custom call composes with fork: a child can snapshot its (COW)
    // view independently of the parent.
    let k = Kernel::default();
    let parent = k.create_space();
    let ps = parent.page_size();
    let a = parent
        .mmap(4 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    parent.write_u64(a, 1).unwrap();
    let child = parent.fork().unwrap();
    let child_snap = child.vm_snapshot(None, a, 4 * ps).unwrap();
    child.write_u64(a, 2).unwrap();
    parent.write_u64(a, 3).unwrap();
    assert_eq!(
        child.read_u64(child_snap).unwrap(),
        1,
        "child snapshot frozen"
    );
    assert_eq!(child.read_u64(a).unwrap(), 2);
    assert_eq!(parent.read_u64(a).unwrap(), 3);
}

#[test]
fn misaligned_requests_rejected_everywhere() {
    let k = Kernel::default();
    let s = k.create_space();
    let ps = s.page_size();
    let a = s
        .mmap(2 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    assert!(matches!(
        s.munmap(a + 1, ps),
        Err(VmError::Misaligned { .. })
    ));
    assert!(matches!(
        s.mprotect(a, ps + 7, RO),
        Err(VmError::Misaligned { .. })
    ));
    assert!(matches!(
        s.mmap_at(a + 3, ps, RW, Share::Private, MapBacking::Anon),
        Err(VmError::Misaligned { .. })
    ));
    let f = k.create_file(1);
    assert!(matches!(
        s.mmap(ps, RW, Share::Shared, MapBacking::File(&f, 9)),
        Err(VmError::Misaligned { .. })
    ));
}

#[test]
fn snapshot_chain_refcounts_settle_after_teardown() {
    // Layered snapshots and writes, then tear everything down: every frame
    // must return to the allocator.
    let k = Kernel::default();
    let s = k.create_space();
    let ps = s.page_size();
    let col = s
        .mmap(16 * ps, RW, Share::Private, MapBacking::Anon)
        .unwrap();
    for p in 0..16 {
        s.write_u64(col + p * ps, p).unwrap();
    }
    let mut snaps = Vec::new();
    for round in 0..5u64 {
        snaps.push(s.vm_snapshot(None, col, 16 * ps).unwrap());
        for p in (round % 4..16).step_by(4) {
            s.write_u64(col + p * ps, round * 100 + p).unwrap();
        }
    }
    for snap in snaps {
        s.munmap(snap, 16 * ps).unwrap();
    }
    s.munmap(col, 16 * ps).unwrap();
    assert_eq!(k.frames_in_use(), 0, "frame leak after teardown");
}
