//! Backend-equivalence property test: the same randomized sequence of
//! area operations — alloc, word writes, `vm_snapshot` (fresh and
//! recycling), release, reads — must produce byte-identical observable
//! state on the simulated kernel and on the real-OS memfd backend, and
//! both must agree with a plain-vector oracle.
//!
//! The simulated kernel is booted with the *hardware* page size so the two
//! backends have identical area geometry.

#![cfg(target_os = "linux")]

use anker_vmem::{Kernel, KernelConfig, OsBackend, VmBackend};
use proptest::prelude::*;

const MAX_PAGES: u64 = 3;
const MAX_AREAS: usize = 8;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate an area of `pages` pages.
    Alloc { pages: u64 },
    /// Write `value` at word `word` (modulo size) of area `sel` (modulo
    /// live-area count).
    Write { sel: usize, word: usize, value: u64 },
    /// `vm_snapshot` area `sel` into a fresh area.
    Snapshot { sel: usize },
    /// `vm_snapshot` area `src` into the equally-sized area `dst`
    /// (§4.1.3 destination recycling); skipped when sizes differ.
    Recycle { src: usize, dst: usize },
    /// Release area `sel`.
    Release { sel: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (1..=MAX_PAGES).prop_map(|pages| Op::Alloc { pages }),
        6 => (0..MAX_AREAS, 0..4096usize, any::<u64>())
            .prop_map(|(sel, word, value)| Op::Write { sel, word, value }),
        2 => (0..MAX_AREAS).prop_map(|sel| Op::Snapshot { sel }),
        1 => (0..MAX_AREAS, 0..MAX_AREAS).prop_map(|(src, dst)| Op::Recycle { src, dst }),
        1 => (0..MAX_AREAS).prop_map(|sel| Op::Release { sel }),
    ]
}

/// One backend's live areas plus the shared oracle index.
struct Fleet<'a> {
    backend: &'a dyn VmBackend,
    /// `(addr, pages)` per live area, position-aligned with the oracle.
    areas: Vec<(u64, u64)>,
}

impl<'a> Fleet<'a> {
    fn words(&self, sel: usize) -> u64 {
        self.areas[sel].1 * self.backend.page_size() / 8
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Apply every op to both backends and a plain-vector oracle; all
    /// three must agree after every step and in a final full sweep.
    #[test]
    fn backends_are_observably_identical(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        let os = OsBackend::new().expect("OS backend on Linux");
        let ps = VmBackend::page_size(&os);
        let kernel = Kernel::new(KernelConfig {
            page_size: ps as usize,
            ..KernelConfig::default()
        });
        let space = kernel.create_space();
        let mut sim = Fleet { backend: &space, areas: Vec::new() };
        let mut osf = Fleet { backend: &os, areas: Vec::new() };
        // The oracle: plain vectors, one per live area.
        let mut oracle: Vec<Vec<u64>> = Vec::new();

        for op in &ops {
            match *op {
                Op::Alloc { pages } => {
                    if oracle.len() >= MAX_AREAS {
                        continue;
                    }
                    let bytes = pages * ps;
                    for f in [&mut sim, &mut osf] {
                        let a = f.backend.alloc(bytes).unwrap();
                        f.areas.push((a, pages));
                    }
                    oracle.push(vec![0u64; (bytes / 8) as usize]);
                }
                Op::Write { sel, word, value } => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let sel = sel % oracle.len();
                    let word = word % oracle[sel].len();
                    for f in [&mut sim, &mut osf] {
                        f.backend
                            .write_u64(f.areas[sel].0 + word as u64 * 8, value)
                            .unwrap();
                    }
                    oracle[sel][word] = value;
                }
                Op::Snapshot { sel } => {
                    if oracle.is_empty() || oracle.len() >= MAX_AREAS {
                        continue;
                    }
                    let sel = sel % oracle.len();
                    for f in [&mut sim, &mut osf] {
                        let (addr, pages) = f.areas[sel];
                        let snap = f.backend.vm_snapshot(None, addr, pages * ps).unwrap();
                        f.areas.push((snap, pages));
                    }
                    let copy = oracle[sel].clone();
                    oracle.push(copy);
                }
                Op::Recycle { src, dst } => {
                    if oracle.len() < 2 {
                        continue;
                    }
                    let src = src % oracle.len();
                    let dst = dst % oracle.len();
                    if src == dst || oracle[src].len() != oracle[dst].len() {
                        continue;
                    }
                    for f in [&mut sim, &mut osf] {
                        let (saddr, pages) = f.areas[src];
                        let daddr = f.areas[dst].0;
                        let got = f.backend.vm_snapshot(Some(daddr), saddr, pages * ps).unwrap();
                        prop_assert_eq!(got, daddr);
                    }
                    oracle[dst] = oracle[src].clone();
                }
                Op::Release { sel } => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let sel = sel % oracle.len();
                    for f in [&mut sim, &mut osf] {
                        let (addr, pages) = f.areas.remove(sel);
                        f.backend.release(addr, pages * ps).unwrap();
                    }
                    oracle.remove(sel);
                }
            }
            // Spot-check one word of one area after every op (cheap).
            if let Some(sel) = oracle.len().checked_sub(1) {
                let w = oracle[sel].len() / 2;
                let expect = oracle[sel][w];
                for f in [&sim, &osf] {
                    let got = f.backend.read_u64(f.areas[sel].0 + w as u64 * 8).unwrap();
                    prop_assert_eq!(got, expect, "spot check after {:?}", op);
                }
            }
        }

        // Final sweep: every word of every live area, via the block path.
        for (sel, shadow) in oracle.iter().enumerate() {
            for f in [&sim, &osf] {
                prop_assert_eq!(f.words(sel) as usize, shadow.len());
                let mut buf = vec![0u64; shadow.len()];
                f.backend.read_words(f.areas[sel].0, &mut buf).unwrap();
                prop_assert_eq!(&buf, shadow, "final state of area {}", sel);
            }
        }
    }
}
