//! Table schemas: named, typed column metadata.

use crate::dict::Dictionary;
use crate::value::LogicalType;
use anker_util::FxHashMap;
use std::sync::Arc;

/// Index of a column within its table's schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub usize);

/// Definition of one column.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Attribute name, e.g. `l_shipdate`.
    pub name: String,
    /// Storage type of the column.
    pub ty: LogicalType,
    /// The dictionary for `LogicalType::Dict` columns.
    pub dict: Option<Arc<Dictionary>>,
}

impl ColumnDef {
    /// A plain (non-dictionary) column.
    pub fn new(name: impl Into<String>, ty: LogicalType) -> ColumnDef {
        assert!(
            ty != LogicalType::Dict,
            "dictionary columns need ColumnDef::dict"
        );
        ColumnDef {
            name: name.into(),
            ty,
            dict: None,
        }
    }

    /// A dictionary-encoded string column.
    pub fn dict(name: impl Into<String>, dict: Arc<Dictionary>) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty: LogicalType::Dict,
            dict: Some(dict),
        }
    }
}

/// An ordered set of column definitions with name lookup.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    cols: Vec<ColumnDef>,
    by_name: FxHashMap<String, usize>,
}

impl Schema {
    /// Build a schema; column names must be unique.
    pub fn new(cols: Vec<ColumnDef>) -> Schema {
        let mut by_name = FxHashMap::default();
        for (i, c) in cols.iter().enumerate() {
            let prev = by_name.insert(c.name.clone(), i);
            assert!(prev.is_none(), "duplicate column name {:?}", c.name);
        }
        Schema { cols, by_name }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True for a schema with no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Column id of `name`.
    ///
    /// # Panics
    /// Panics when the column does not exist (schema mistakes are
    /// programming errors here, not runtime conditions).
    pub fn col(&self, name: &str) -> ColumnId {
        match self.by_name.get(name) {
            Some(&i) => ColumnId(i),
            None => panic!("no column named {name:?}"),
        }
    }

    /// Column id of `name`, if present.
    pub fn try_col(&self, name: &str) -> Option<ColumnId> {
        self.by_name.get(name).map(|&i| ColumnId(i))
    }

    /// Definition of column `id`.
    pub fn def(&self, id: ColumnId) -> &ColumnDef {
        &self.cols[id.0]
    }

    /// Iterate over `(ColumnId, &ColumnDef)`.
    pub fn iter(&self) -> impl Iterator<Item = (ColumnId, &ColumnDef)> {
        self.cols.iter().enumerate().map(|(i, d)| (ColumnId(i), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("l_orderkey", LogicalType::Int),
            ColumnDef::new("l_extendedprice", LogicalType::Double),
            ColumnDef::new("l_shipdate", LogicalType::Date),
            ColumnDef::dict(
                "l_returnflag",
                Arc::new(Dictionary::with_values(["A", "N", "R"])),
            ),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert_eq!(s.col("l_shipdate"), ColumnId(2));
        assert_eq!(s.try_col("nope"), None);
        assert_eq!(s.def(s.col("l_returnflag")).ty, LogicalType::Dict);
        assert_eq!(s.len(), 4);
    }

    #[test]
    #[should_panic(expected = "no column named")]
    fn missing_column_panics() {
        schema().col("does_not_exist");
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        Schema::new(vec![
            ColumnDef::new("a", LogicalType::Int),
            ColumnDef::new("a", LogicalType::Int),
        ]);
    }

    #[test]
    fn dict_column_carries_dictionary() {
        let s = schema();
        let def = s.def(s.col("l_returnflag"));
        let dict = def.dict.as_ref().unwrap();
        assert_eq!(dict.code("N"), Some(1));
    }
}
