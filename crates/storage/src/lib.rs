//! # anker-storage — column-oriented storage on simulated virtual memory
//!
//! AnKerDB is a main-memory column store (paper §1.4(I)): every attribute is
//! a dense array of fixed-width values living in its own virtual memory
//! area, so it can be snapshotted *individually* with `vm_snapshot`
//! (contribution III — column-granular snapshots).
//!
//! This crate provides the storage primitives the MVCC and database layers
//! build on:
//!
//! * [`value`] — all column elements are 8-byte words ([`value::Value`]
//!   encodings for integers, doubles, dates, and dictionary codes), so
//!   in-place updates and concurrent scans are aligned atomic accesses.
//! * [`column::ColumnArea`] — a typed view of one column's virtual memory
//!   area with page-wise access for tight-loop scans.
//! * [`dict::Dictionary`] — interning dictionaries for low-cardinality
//!   string attributes (`l_returnflag`, `o_orderpriority`, `p_brand`, ...).
//! * [`table::Schema`] — named, typed column metadata.
//! * [`index`] — hash indexes for OLTP point lookups and the join paths of
//!   Q4/Q17 (the paper's process also holds "the used indexes", §5.6).
//!
//! ## Example
//!
//! ```
//! use anker_storage::{ColumnArea, Dictionary, LogicalType, Value};
//! use anker_vmem::Kernel;
//!
//! let kernel = Kernel::default();
//! let space = kernel.create_space();
//!
//! // One column of 1000 rows, each an 8-byte word in its own VM area.
//! let prices = ColumnArea::alloc(&space, 1000).unwrap();
//! prices.set_value(7, Value::Double(19.99)).unwrap();
//! assert_eq!(
//!     prices.get_value(7, LogicalType::Double).unwrap(),
//!     Value::Double(19.99)
//! );
//!
//! // Low-cardinality strings live in interning dictionaries.
//! let dict = Dictionary::new();
//! let code = dict.intern("URGENT");
//! assert_eq!(&*dict.value(code), "URGENT");
//! ```

pub mod column;
pub mod dict;
pub mod index;
pub mod table;
pub mod value;

pub use column::{ColumnArea, ZoneMap};
pub use dict::Dictionary;
pub use index::{ContiguousIndex, HashIndex, MultiIndex};
pub use table::{ColumnDef, ColumnId, Schema};
pub use value::{rank, LogicalType, Value};
