//! # anker-storage — column-oriented storage on simulated virtual memory
//!
//! AnKerDB is a main-memory column store (paper §1.4(I)): every attribute is
//! a dense array of fixed-width values living in its own virtual memory
//! area, so it can be snapshotted *individually* with `vm_snapshot`
//! (contribution III — column-granular snapshots).
//!
//! This crate provides the storage primitives the MVCC and database layers
//! build on:
//!
//! * [`value`] — all column elements are 8-byte words ([`value::Value`]
//!   encodings for integers, doubles, dates, and dictionary codes), so
//!   in-place updates and concurrent scans are aligned atomic accesses.
//! * [`column::ColumnArea`] — a typed view of one column's virtual memory
//!   area with page-wise access for tight-loop scans.
//! * [`dict::Dictionary`] — interning dictionaries for low-cardinality
//!   string attributes (`l_returnflag`, `o_orderpriority`, `p_brand`, ...).
//! * [`table::Schema`] — named, typed column metadata.
//! * [`index`] — hash indexes for OLTP point lookups and the join paths of
//!   Q4/Q17 (the paper's process also holds "the used indexes", §5.6).

pub mod column;
pub mod dict;
pub mod index;
pub mod table;
pub mod value;

pub use column::ColumnArea;
pub use dict::Dictionary;
pub use index::{ContiguousIndex, HashIndex, MultiIndex};
pub use table::{ColumnDef, ColumnId, Schema};
pub use value::{LogicalType, Value};
