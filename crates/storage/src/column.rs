//! A column's virtual memory area, generic over the [`VmBackend`] it is
//! mapped on, with block-wise access for tight scans and per-block min/max
//! zone maps for predicate pruning on frozen areas.

use crate::value::{rank, LogicalType, Value};
use anker_vmem::{Result, Space, VmBackend};
use parking_lot::Mutex;
use std::sync::Arc;

/// Per-block `(min, max)` rank summaries of a column area — classic zone
/// maps. A scan with a pushed-down predicate consults them to skip whole
/// blocks whose value range cannot intersect the predicate.
///
/// Zone maps are only meaningful on a *frozen* area (a snapshot column):
/// the engine never writes a snapshot area after hand-over, so the summary
/// stays valid for the area's lifetime. They are built lazily on the first
/// predicate scan and cached inside the [`ColumnArea`] handle (all clones
/// of a view share one cache); the cache is dropped when the snapshot
/// manager freezes an area, so a summary primed while the area was still
/// writable can never mis-prune (see [`ColumnArea::invalidate_zone_map`]).
#[derive(Debug)]
pub struct ZoneMap {
    ty: LogicalType,
    block_rows: u32,
    /// `(min_rank, max_rank)` per block; a block containing a NaN double
    /// is recorded as `(-inf, +inf)` so it is never pruned.
    ranges: Vec<(f64, f64)>,
}

impl ZoneMap {
    /// The logical type the ranks were computed under.
    pub fn ty(&self) -> LogicalType {
        self.ty
    }

    /// Rows per block this map summarises.
    pub fn block_rows(&self) -> u32 {
        self.block_rows
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.ranges.len()
    }

    /// `(min_rank, max_rank)` of `block`.
    #[inline]
    pub fn block_range(&self, block: usize) -> (f64, f64) {
        self.ranges[block]
    }
}

/// A fixed-size view of one column: `rows` 8-byte values stored densely in
/// the virtual memory area starting at `addr` of some [`VmBackend`] —
/// either the simulated kernel ([`anker_vmem::Space`]) or the real-OS
/// memfd backend ([`anker_vmem::OsBackend`]).
///
/// `ColumnArea` is deliberately a *view*: the heterogeneous snapshot manager
/// re-points a logical column at a new area on every snapshot
/// (paper Figure 1, steps 4 and 7), so areas are created and retired by the
/// layer above. Dropping a `ColumnArea` does not unmap anything; call
/// [`ColumnArea::unmap`] to release the area.
#[derive(Debug, Clone)]
pub struct ColumnArea {
    backend: Arc<dyn VmBackend>,
    addr: u64,
    rows: u32,
    /// Lazily built zone maps, shared across clones of this view. A fresh
    /// cell is created per [`ColumnArea::alloc`]/[`ColumnArea::from_raw`],
    /// so a recycled address never inherits a stale summary.
    zones: Arc<Mutex<Option<Arc<ZoneMap>>>>,
}

impl ColumnArea {
    /// Allocate a fresh zero-filled area on the simulated kernel, large
    /// enough for `rows` values, and wrap it.
    pub fn alloc(space: &Space, rows: u32) -> Result<ColumnArea> {
        Self::alloc_on(Arc::new(space.clone()), rows)
    }

    /// Allocate a fresh zero-filled area on any backend.
    pub fn alloc_on(backend: Arc<dyn VmBackend>, rows: u32) -> Result<ColumnArea> {
        let ps = backend.page_size();
        let bytes = (rows as u64 * 8).div_ceil(ps).max(1) * ps;
        let addr = backend.alloc(bytes)?;
        Ok(ColumnArea {
            backend,
            addr,
            rows,
            zones: Arc::new(Mutex::new(None)),
        })
    }

    /// View an existing simulated-kernel area (e.g. one returned by
    /// `vm_snapshot`) as a column of `rows` values.
    pub fn from_raw(space: Space, addr: u64, rows: u32) -> ColumnArea {
        Self::from_raw_on(Arc::new(space), addr, rows)
    }

    /// View an existing area of any backend as a column of `rows` values.
    pub fn from_raw_on(backend: Arc<dyn VmBackend>, addr: u64, rows: u32) -> ColumnArea {
        ColumnArea {
            backend,
            addr,
            rows,
            zones: Arc::new(Mutex::new(None)),
        }
    }

    /// Start address of the area.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The backend the area is mapped on.
    pub fn backend(&self) -> &Arc<dyn VmBackend> {
        &self.backend
    }

    /// Values per page.
    #[inline]
    pub fn vals_per_page(&self) -> u32 {
        (self.backend.page_size() / 8) as u32
    }

    /// Size of the mapped area in bytes (page aligned).
    pub fn mapped_bytes(&self) -> u64 {
        let ps = self.backend.page_size();
        (self.rows as u64 * 8).div_ceil(ps).max(1) * ps
    }

    /// Number of pages backing the area.
    pub fn n_pages(&self) -> u64 {
        self.mapped_bytes() / self.backend.page_size()
    }

    /// Load the raw word of `row` (atomic, relaxed).
    #[inline]
    pub fn get(&self, row: u32) -> Result<u64> {
        debug_assert!(row < self.rows, "row {row} out of {}", self.rows);
        self.backend.read_u64(self.addr + row as u64 * 8)
    }

    /// Store the raw word of `row` (atomic, relaxed; faults/COWs as
    /// needed).
    #[inline]
    pub fn set(&self, row: u32, word: u64) -> Result<()> {
        debug_assert!(row < self.rows, "row {row} out of {}", self.rows);
        self.backend.write_u64(self.addr + row as u64 * 8, word)
    }

    /// Typed load.
    pub fn get_value(&self, row: u32, ty: LogicalType) -> Result<Value> {
        Ok(Value::decode(self.get(row)?, ty))
    }

    /// Typed store.
    pub fn set_value(&self, row: u32, value: Value) -> Result<()> {
        self.set(row, value.encode())
    }

    /// The whole column as a plain `&[u64]` slice when the backend maps it
    /// as directly addressable memory (the OS backend) — the zero-copy
    /// fast path scan block loops read through instead of per-word
    /// resolution. Returns `None` on the simulated kernel.
    ///
    /// # Safety
    ///
    /// A `ColumnArea` is a *view*; cloning it does not pin the mapping.
    /// The caller must guarantee, for the lifetime of the returned slice:
    ///
    /// * the area is not unmapped through *any* clone of this view
    ///   ([`ColumnArea::unmap`] / the backend's `release`), and is not
    ///   recycled as a `vm_snapshot` destination — in the engine this is
    ///   what epoch pinning plus the active-transaction horizon provide;
    /// * the area is **frozen** (a snapshot column the engine has stopped
    ///   writing) — the slice type asserts immutability.
    #[inline]
    pub unsafe fn as_slice(&self) -> Option<&[u64]> {
        let p = self.backend.raw_parts(self.addr, self.rows as u64 * 8)?;
        // SAFETY(provenance: backend, raw_parts, bounds: rows): the
        // backend vouches the range is mapped and readable now; the
        // caller vouches (per this function's contract) that it stays
        // mapped and unwritten for the slice's lifetime.
        Some(unsafe { std::slice::from_raw_parts(p, self.rows as usize) })
    }

    /// Hint the backend that this whole column is about to be scanned
    /// front to back (`madvise(MADV_SEQUENTIAL)` on the OS backend, no-op
    /// on the simulated kernel). Pure hint; scans issue it once per frozen
    /// area before their block loops start.
    pub fn advise_sequential(&self) {
        self.backend
            .advise_sequential(self.addr, self.mapped_bytes());
    }

    /// Copy the raw words of rows `[start_row, start_row + n)` into
    /// `buf[..n]` (atomic loads, block-wise). The tight-loop read path for
    /// snapshot scans.
    pub fn read_block_into(&self, start_row: u32, n: u32, buf: &mut [u64]) -> Result<()> {
        debug_assert!(start_row + n <= self.rows);
        self.backend
            .read_words(self.addr + start_row as u64 * 8, &mut buf[..n as usize])
    }

    /// Bulk-load values starting at row 0 (loader convenience).
    pub fn fill<I: IntoIterator<Item = u64>>(&self, values: I) -> Result<u32> {
        let chunk = self.vals_per_page() as usize;
        let mut buf = Vec::with_capacity(chunk);
        let mut row = 0u32;
        for word in values {
            assert!(
                (row as u64 + buf.len() as u64) < self.rows as u64,
                "fill overflows the column"
            );
            buf.push(word);
            if buf.len() == chunk {
                self.backend.write_words(self.addr + row as u64 * 8, &buf)?;
                row += buf.len() as u32;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            self.backend.write_words(self.addr + row as u64 * 8, &buf)?;
            row += buf.len() as u32;
        }
        Ok(row)
    }

    /// The zone map of this area under `ty`, with `block_rows` rows per
    /// block, building and caching it on first use.
    ///
    /// Only call this on a **frozen** area (a snapshot column): the cache
    /// is never invalidated while the handle lives, so a summary built
    /// while writers are active would go stale. The snapshot manager
    /// clears the cache at the freeze point
    /// ([`ColumnArea::invalidate_zone_map`]); all clones of the view share
    /// the cached map.
    pub fn zone_map(&self, ty: LogicalType, block_rows: u32) -> Result<Arc<ZoneMap>> {
        assert!(block_rows > 0, "zone map block size must be positive");
        let mut slot = self.zones.lock();
        if let Some(zm) = slot.as_ref() {
            assert!(
                zm.ty == ty && zm.block_rows == block_rows,
                "zone map requested with mismatched type or block size"
            );
            return Ok(Arc::clone(zm));
        }
        let n_blocks = (self.rows as usize).div_ceil(block_rows as usize);
        let mut ranges = Vec::with_capacity(n_blocks);
        let mut buf = vec![0u64; block_rows as usize];
        let mut start = 0u32;
        while start < self.rows {
            let n = block_rows.min(self.rows - start);
            self.read_block_into(start, n, &mut buf)?;
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &w in &buf[..n as usize] {
                let r = rank(w, ty);
                if r.is_nan() {
                    // Never prune a block holding NaN doubles.
                    lo = f64::NEG_INFINITY;
                    hi = f64::INFINITY;
                    break;
                }
                lo = lo.min(r);
                hi = hi.max(r);
            }
            ranges.push((lo, hi));
            start += n;
        }
        let zm = Arc::new(ZoneMap {
            ty,
            block_rows,
            ranges,
        });
        *slot = Some(Arc::clone(&zm));
        Ok(zm)
    }

    /// Drop any cached zone map. The snapshot manager calls this at the
    /// moment an area freezes (stops being the current, writable
    /// representation): a summary primed *before* the freeze may predate
    /// the area's last writes, and pruning against it would silently skip
    /// matching rows. The next predicate scan rebuilds the map from the
    /// now-immutable content.
    pub fn invalidate_zone_map(&self) {
        *self.zones.lock() = None;
    }

    /// Unmap the underlying area, releasing its memory.
    pub fn unmap(self) -> Result<()> {
        let bytes = self.mapped_bytes();
        self.backend.release(self.addr, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anker_vmem::{Kernel, OsBackend};

    fn column(rows: u32) -> (Kernel, ColumnArea) {
        let k = Kernel::default();
        let s = k.create_space();
        let c = ColumnArea::alloc(&s, rows).unwrap();
        (k, c)
    }

    #[test]
    fn get_set_round_trip() {
        let (_k, c) = column(2000);
        for r in 0..2000u32 {
            c.set(r, r as u64 * 3).unwrap();
        }
        for r in 0..2000u32 {
            assert_eq!(c.get(r).unwrap(), r as u64 * 3);
        }
    }

    #[test]
    fn typed_access() {
        let (_k, c) = column(4);
        c.set_value(0, Value::Double(0.25)).unwrap();
        c.set_value(1, Value::Int(-7)).unwrap();
        c.set_value(2, Value::Date(100)).unwrap();
        c.set_value(3, Value::Dict(9)).unwrap();
        assert_eq!(
            c.get_value(0, LogicalType::Double).unwrap(),
            Value::Double(0.25)
        );
        assert_eq!(c.get_value(1, LogicalType::Int).unwrap(), Value::Int(-7));
        assert_eq!(c.get_value(2, LogicalType::Date).unwrap(), Value::Date(100));
        assert_eq!(c.get_value(3, LogicalType::Dict).unwrap(), Value::Dict(9));
    }

    #[test]
    fn fill_and_block_scan() {
        let (_k, c) = column(1500);
        let n = c.fill((0..1500).map(|i| i * 2)).unwrap();
        assert_eq!(n, 1500);
        let mut buf = vec![0u64; 512];
        let mut sum = 0u64;
        let mut rows_seen = 0u32;
        let mut start = 0u32;
        while start < c.rows() {
            let take = 512.min(c.rows() - start);
            c.read_block_into(start, take, &mut buf).unwrap();
            sum += buf[..take as usize].iter().sum::<u64>();
            rows_seen += take;
            start += take;
        }
        assert_eq!(rows_seen, 1500);
        assert_eq!(sum, (0..1500u64).map(|i| i * 2).sum::<u64>());
    }

    #[test]
    fn page_count_rounds_up() {
        let (_k, c) = column(513); // 513 * 8 = 4104 bytes -> 2 pages
        assert_eq!(c.n_pages(), 2);
        assert_eq!(c.vals_per_page(), 512);
        // Last row lives on the second page.
        c.set(512, 42).unwrap();
        assert_eq!(c.get(512).unwrap(), 42);
    }

    #[test]
    fn unmap_releases_frames() {
        let k = Kernel::default();
        let s = k.create_space();
        let c = ColumnArea::alloc(&s, 5000).unwrap();
        for r in 0..5000 {
            c.set(r, 1).unwrap();
        }
        assert!(k.frames_in_use() > 0);
        c.unmap().unwrap();
        assert_eq!(k.frames_in_use(), 0);
    }

    #[test]
    fn zone_maps_summarise_blocks() {
        let (_k, c) = column(2500);
        c.fill((0..2500).map(|i| Value::Int(i).encode())).unwrap();
        let zm = c.zone_map(LogicalType::Int, 1024).unwrap();
        assert_eq!(zm.n_blocks(), 3);
        assert_eq!(zm.block_range(0), (0.0, 1023.0));
        assert_eq!(zm.block_range(1), (1024.0, 2047.0));
        assert_eq!(zm.block_range(2), (2048.0, 2499.0));
        // Cached: a second request returns the same map.
        let again = c.zone_map(LogicalType::Int, 1024).unwrap();
        assert!(Arc::ptr_eq(&zm, &again));
        // Clones of the view share the cache.
        let clone = c.clone();
        assert!(Arc::ptr_eq(
            &zm,
            &clone.zone_map(LogicalType::Int, 1024).unwrap()
        ));
    }

    #[test]
    fn zone_map_invalidation_drops_stale_summaries() {
        let (_k, c) = column(100);
        c.fill((0..100).map(|i| Value::Int(i).encode())).unwrap();
        let zm = c.zone_map(LogicalType::Int, 64).unwrap();
        assert_eq!(zm.block_range(0), (0.0, 63.0));
        // A write the summary does not know about...
        c.set_value(3, Value::Int(1_000)).unwrap();
        // ...is reflected once the freeze point invalidates the cache.
        c.invalidate_zone_map();
        let fresh = c.zone_map(LogicalType::Int, 64).unwrap();
        assert!(!Arc::ptr_eq(&zm, &fresh));
        assert_eq!(fresh.block_range(0), (0.0, 1_000.0));
    }

    #[test]
    fn zone_maps_never_prune_nan_blocks() {
        let (_k, c) = column(10);
        c.fill((0..10).map(|_| Value::Double(f64::NAN).encode()))
            .unwrap();
        let zm = c.zone_map(LogicalType::Double, 1024).unwrap();
        let (lo, hi) = zm.block_range(0);
        assert_eq!(lo, f64::NEG_INFINITY);
        assert_eq!(hi, f64::INFINITY);
    }

    #[test]
    fn snapshot_view_reads_frozen_data() {
        let k = Kernel::default();
        let s = k.create_space();
        let c = ColumnArea::alloc(&s, 1024).unwrap();
        c.fill(0..1024).unwrap();
        let snap_addr = s.vm_snapshot(None, c.addr(), c.mapped_bytes()).unwrap();
        let snap = ColumnArea::from_raw(s.clone(), snap_addr, 1024);
        c.set(100, 999).unwrap();
        assert_eq!(snap.get(100).unwrap(), 100);
        assert_eq!(c.get(100).unwrap(), 999);
    }

    #[test]
    fn sim_backend_has_no_slice_fast_path() {
        let (_k, c) = column(64);
        // SAFETY(provenance: c): the area lives for the whole test and is
        // never written while a slice could exist (it returns None here
        // anyway).
        assert!(unsafe { c.as_slice() }.is_none());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn os_backend_column_and_slice_fast_path() {
        let b: Arc<dyn VmBackend> = Arc::new(OsBackend::new().unwrap());
        let c = ColumnArea::alloc_on(Arc::clone(&b), 3000).unwrap();
        c.fill((0..3000).map(|i| i * 5)).unwrap();
        // Snapshot through the generic path, as the snapshot manager does.
        let snap_addr = b.vm_snapshot(None, c.addr(), c.mapped_bytes()).unwrap();
        let snap = ColumnArea::from_raw_on(Arc::clone(&b), snap_addr, 3000);
        c.set(7, 1).unwrap();
        // SAFETY(provenance: snap): `snap` is frozen (never written below)
        // and not unmapped until after the last use of `s`.
        let s = unsafe { snap.as_slice() }.expect("OS backend exposes raw slices");
        assert_eq!(s.len(), 3000);
        assert_eq!(s[7], 35, "snapshot slice reads frozen content");
        assert_eq!(c.get(7).unwrap(), 1);
        let zm = snap.zone_map(LogicalType::Int, 1024).unwrap();
        assert_eq!(zm.n_blocks(), 3);
        snap.unmap().unwrap();
        c.unmap().unwrap();
    }
}
