//! Hash indexes for OLTP point lookups and the join paths of Q4/Q17.
//!
//! The OLTP transactions of §5.2 update rows by key (`l_orderkey` +
//! `l_linenumber`, `o_orderkey`, `p_partkey`); these indexes turn those
//! predicates into O(1) row-id lookups. The paper notes the process holds
//! "the used indexes" alongside the tables (§5.6) — snapshotting deliberately
//! excludes them, which is part of why column-granular `vm_snapshot` beats
//! whole-process `fork`.

use anker_util::FxHashMap;
use parking_lot::RwLock;
use std::hash::Hash;

/// A unique-key hash index: key → row id.
#[derive(Debug)]
pub struct HashIndex<K> {
    map: RwLock<FxHashMap<K, u32>>,
}

impl<K: Eq + Hash> Default for HashIndex<K> {
    fn default() -> Self {
        HashIndex {
            map: RwLock::new(FxHashMap::default()),
        }
    }
}

impl<K: Eq + Hash> HashIndex<K> {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a key; returns the previous row id if the key existed.
    pub fn insert(&self, key: K, row: u32) -> Option<u32> {
        self.map.write().insert(key, row)
    }

    /// Row id of `key`.
    pub fn get(&self, key: &K) -> Option<u32> {
        self.map.read().get(key).copied()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if the index holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A build-once multi-map index: key → row ids (used for `l_partkey`
/// lookups in Q17).
#[derive(Debug, Default)]
pub struct MultiIndex<K> {
    map: FxHashMap<K, Vec<u32>>,
}

impl<K: Eq + Hash> MultiIndex<K> {
    /// Build from `(key, row)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (K, u32)>) -> Self {
        let mut map: FxHashMap<K, Vec<u32>> = FxHashMap::default();
        for (k, row) in pairs {
            map.entry(k).or_default().push(row);
        }
        MultiIndex { map }
    }

    /// Rows of `key` (empty slice if absent).
    pub fn get(&self, key: &K) -> &[u32] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no keys were indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A build-once index for keys whose rows are stored contiguously:
/// key → (first row, count). LINEITEM rows of one order are generated
/// adjacently, so Q4's `EXISTS` probe is a range check.
#[derive(Debug, Default)]
pub struct ContiguousIndex<K> {
    map: FxHashMap<K, (u32, u32)>,
}

impl<K: Eq + Hash> ContiguousIndex<K> {
    /// Build from an iterator of per-row keys (row ids are positional).
    /// Keys must be grouped (all equal keys adjacent).
    pub fn from_grouped_keys(keys: impl IntoIterator<Item = K>) -> Self
    where
        K: Clone + PartialEq,
    {
        let mut map: FxHashMap<K, (u32, u32)> = FxHashMap::default();
        let mut current: Option<(K, u32, u32)> = None;
        for (row, key) in (0u32..).zip(keys) {
            match &mut current {
                Some((k, _, count)) if *k == key => *count += 1,
                _ => {
                    if let Some((k, start, count)) = current.take() {
                        let prev = map.insert(k, (start, count));
                        assert!(prev.is_none(), "keys not grouped");
                    }
                    current = Some((key, row, 1));
                }
            }
        }
        if let Some((k, start, count)) = current {
            let prev = map.insert(k, (start, count));
            assert!(prev.is_none(), "keys not grouped");
        }
        ContiguousIndex { map }
    }

    /// The contiguous row range of `key`, as `(first_row, count)`.
    pub fn get(&self, key: &K) -> Option<(u32, u32)> {
        self.map.get(key).copied()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no keys were indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_index_basics() {
        let idx: HashIndex<(i64, i32)> = HashIndex::new();
        assert!(idx.is_empty());
        idx.insert((100, 1), 0);
        idx.insert((100, 2), 1);
        idx.insert((104, 1), 2);
        assert_eq!(idx.get(&(100, 2)), Some(1));
        assert_eq!(idx.get(&(999, 1)), None);
        assert_eq!(idx.len(), 3);
        // Re-insert replaces.
        assert_eq!(idx.insert((100, 1), 7), Some(0));
        assert_eq!(idx.get(&(100, 1)), Some(7));
    }

    #[test]
    fn multi_index_groups_rows() {
        let idx = MultiIndex::from_pairs([(5i64, 0u32), (7, 1), (5, 2), (5, 3)]);
        assert_eq!(idx.get(&5), &[0, 2, 3]);
        assert_eq!(idx.get(&7), &[1]);
        assert_eq!(idx.get(&9), &[] as &[u32]);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn contiguous_index_ranges() {
        // Orders 1,1,1,4,4,8 — like lineitem rows grouped by orderkey.
        let idx = ContiguousIndex::from_grouped_keys([1i64, 1, 1, 4, 4, 8]);
        assert_eq!(idx.get(&1), Some((0, 3)));
        assert_eq!(idx.get(&4), Some((3, 2)));
        assert_eq!(idx.get(&8), Some((5, 1)));
        assert_eq!(idx.get(&2), None);
    }

    #[test]
    #[should_panic(expected = "keys not grouped")]
    fn contiguous_index_rejects_ungrouped() {
        ContiguousIndex::from_grouped_keys([1i64, 2, 1]);
    }

    #[test]
    fn concurrent_hash_index_reads() {
        let idx = std::sync::Arc::new(HashIndex::<u64>::new());
        for i in 0..1000 {
            idx.insert(i, i as u32);
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let idx = idx.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        assert_eq!(idx.get(&i), Some(i as u32));
                    }
                });
            }
        });
    }
}
