//! Interning dictionaries for low-cardinality string attributes.
//!
//! The paper's update transactions set VARCHAR attributes like
//! `l_returnflag` or `p_brand` by "picking an existing value from the column
//! uniformly at random" (§5.2) — dictionary codes make those updates plain
//! 8-byte stores and make equality predicates integer comparisons.

use anker_util::FxHashMap;
use parking_lot::RwLock;
use std::sync::Arc;

#[derive(Debug, Default)]
struct DictInner {
    values: Vec<Arc<str>>,
    codes: FxHashMap<Arc<str>, u32>,
}

/// An append-only, thread-safe string dictionary.
#[derive(Debug, Default)]
pub struct Dictionary {
    inner: RwLock<DictInner>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Dictionary pre-seeded with `values` in order (codes 0..n).
    pub fn with_values<S: AsRef<str>>(values: impl IntoIterator<Item = S>) -> Dictionary {
        let d = Dictionary::new();
        for v in values {
            d.intern(v.as_ref());
        }
        d
    }

    /// Return the code of `s`, inserting it if unseen.
    pub fn intern(&self, s: &str) -> u32 {
        if let Some(code) = self.code(s) {
            return code;
        }
        let mut inner = self.inner.write();
        if let Some(&code) = inner.codes.get(s) {
            return code;
        }
        let code = inner.values.len() as u32;
        let arc: Arc<str> = Arc::from(s);
        inner.values.push(Arc::clone(&arc));
        inner.codes.insert(arc, code);
        code
    }

    /// The code of `s`, if present.
    pub fn code(&self, s: &str) -> Option<u32> {
        self.inner.read().codes.get(s).copied()
    }

    /// The string of `code`.
    ///
    /// # Panics
    /// Panics if `code` was never handed out.
    pub fn value(&self, code: u32) -> Arc<str> {
        Arc::clone(&self.inner.read().values[code as usize])
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.inner.read().values.len()
    }

    /// True if no value was interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All codes currently in use (0..len).
    pub fn codes(&self) -> std::ops::Range<u32> {
        0..self.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let d = Dictionary::new();
        let a = d.intern("R");
        let b = d.intern("N");
        assert_eq!(d.intern("R"), a);
        assert_eq!(d.intern("N"), b);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lookup_both_directions() {
        let d = Dictionary::with_values(["1-URGENT", "2-HIGH", "3-MEDIUM"]);
        assert_eq!(d.code("2-HIGH"), Some(1));
        assert_eq!(d.code("4-NOT THERE"), None);
        assert_eq!(&*d.value(2), "3-MEDIUM");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let d = Arc::new(Dictionary::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let d = d.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        d.intern(&format!("val-{}", i % 10));
                    }
                });
            }
        });
        assert_eq!(d.len(), 10);
        // Codes are dense and consistent.
        for i in 0..10 {
            let code = d.code(&format!("val-{i}")).unwrap();
            assert_eq!(&*d.value(code), format!("val-{i}").as_str());
        }
    }
}
