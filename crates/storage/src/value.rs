//! Value encoding: every column element is one 8-byte word.
//!
//! Fixing the element width to 64 bits keeps in-place MVCC updates and
//! concurrent scans torn-read-free (aligned atomic loads/stores) and keeps
//! `vm_snapshot`'s unit of sharing (the page) uniform across types. The
//! paper's evaluated attributes map as:
//!
//! | SQL type           | encoding                              |
//! |--------------------|---------------------------------------|
//! | INTEGER / BIGINT   | `i64` two's complement                |
//! | DOUBLE             | `f64::to_bits`                        |
//! | DATE               | days since 1992-01-01 as `i64`        |
//! | VARCHAR (low card.)| `u32` dictionary code, zero-extended  |

use std::fmt;

/// Logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalType {
    /// 64-bit signed integer.
    Int,
    /// IEEE-754 double.
    Double,
    /// Days since the epoch 1992-01-01 (TPC-H's first order date).
    Date,
    /// Dictionary-encoded string; the code indexes a
    /// [`crate::Dictionary`].
    Dict,
}

/// A decoded column value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Int(i64),
    Double(f64),
    Date(i32),
    Dict(u32),
}

impl Value {
    /// Encode to the 8-byte word stored in the column.
    #[inline]
    pub fn encode(self) -> u64 {
        match self {
            Value::Int(v) => v as u64,
            Value::Double(v) => v.to_bits(),
            Value::Date(v) => v as i64 as u64,
            Value::Dict(v) => v as u64,
        }
    }

    /// Decode a stored word according to `ty`.
    #[inline]
    pub fn decode(word: u64, ty: LogicalType) -> Value {
        match ty {
            LogicalType::Int => Value::Int(word as i64),
            LogicalType::Double => Value::Double(f64::from_bits(word)),
            LogicalType::Date => Value::Date(word as i64 as i32),
            LogicalType::Dict => Value::Dict(word as u32),
        }
    }

    /// The logical type this value carries.
    pub fn logical_type(self) -> LogicalType {
        match self {
            Value::Int(_) => LogicalType::Int,
            Value::Double(_) => LogicalType::Double,
            Value::Date(_) => LogicalType::Date,
            Value::Dict(_) => LogicalType::Dict,
        }
    }

    /// Interpret as `i64`, panicking on type mismatch.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            other => panic!("expected Int, found {other:?}"),
        }
    }

    /// Interpret as `f64`, panicking on type mismatch.
    pub fn as_double(self) -> f64 {
        match self {
            Value::Double(v) => v,
            other => panic!("expected Double, found {other:?}"),
        }
    }

    /// Interpret as date days, panicking on type mismatch.
    pub fn as_date(self) -> i32 {
        match self {
            Value::Date(v) => v,
            other => panic!("expected Date, found {other:?}"),
        }
    }

    /// Interpret as dictionary code, panicking on type mismatch.
    pub fn as_dict(self) -> u32 {
        match self {
            Value::Dict(v) => v,
            other => panic!("expected Dict, found {other:?}"),
        }
    }
}

/// Numeric rank of a stored word for range comparison: ints, dates, and
/// doubles map to `f64` (TPC-H key ranges fit the 53-bit mantissa exactly);
/// dictionary codes rank by their numeric code, which supports equality and
/// min/max pruning but carries no lexicographic meaning.
///
/// This is the single ordering the engine uses everywhere a predicate
/// compares column values: precision-lock validation, pushed-down scan
/// filters, and zone-map pruning all agree by construction.
#[inline]
pub fn rank(word: u64, ty: LogicalType) -> f64 {
    match Value::decode(word, ty) {
        Value::Int(v) => v as f64,
        Value::Double(v) => v,
        Value::Date(v) => v as f64,
        Value::Dict(v) => v as f64,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v:.4}"),
            Value::Date(v) => {
                let (y, m, d) = date::from_days(*v);
                write!(f, "{y:04}-{m:02}-{d:02}")
            }
            Value::Dict(v) => write!(f, "#{v}"),
        }
    }
}

/// Calendar helpers for the `Date` encoding (days since 1992-01-01).
pub mod date {
    /// The epoch year of day 0.
    pub const EPOCH_YEAR: i32 = 1992;

    fn is_leap(y: i32) -> bool {
        (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
    }

    fn days_in_month(y: i32, m: u32) -> i32 {
        match m {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if is_leap(y) {
                    29
                } else {
                    28
                }
            }
            _ => panic!("bad month {m}"),
        }
    }

    /// Days since 1992-01-01 for a calendar date (year ≥ 1992).
    pub fn to_days(year: i32, month: u32, day: u32) -> i32 {
        assert!(
            year >= EPOCH_YEAR,
            "dates before 1992 are not representable"
        );
        assert!((1..=12).contains(&month));
        assert!(day >= 1 && (day as i32) <= days_in_month(year, month));
        let mut days = 0i32;
        for y in EPOCH_YEAR..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
        for m in 1..month {
            days += days_in_month(year, m);
        }
        days + day as i32 - 1
    }

    /// Calendar date for a day count since 1992-01-01.
    pub fn from_days(mut days: i32) -> (i32, u32, u32) {
        assert!(days >= 0, "dates before 1992 are not representable");
        let mut year = EPOCH_YEAR;
        loop {
            let in_year = if is_leap(year) { 366 } else { 365 };
            if days < in_year {
                break;
            }
            days -= in_year;
            year += 1;
        }
        let mut month = 1u32;
        loop {
            let in_month = days_in_month(year, month);
            if days < in_month {
                break;
            }
            days -= in_month;
            month += 1;
        }
        (year, month, days as u32 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for v in [
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Double(0.15),
            Value::Double(-123.456),
            Value::Date(0),
            Value::Date(2400),
            Value::Dict(0),
            Value::Dict(u32::MAX),
        ] {
            let decoded = Value::decode(v.encode(), v.logical_type());
            assert_eq!(decoded, v);
        }
    }

    #[test]
    fn negative_date_round_trip_through_i64() {
        // Dates are epoch-relative and non-negative in practice, but the
        // encoding must still sign-extend correctly.
        let v = Value::Date(-5);
        assert_eq!(Value::decode(v.encode(), LogicalType::Date), v);
    }

    #[test]
    fn date_math() {
        assert_eq!(date::to_days(1992, 1, 1), 0);
        assert_eq!(date::to_days(1992, 12, 31), 365); // 1992 is a leap year
        assert_eq!(date::to_days(1993, 1, 1), 366);
        assert_eq!(date::from_days(0), (1992, 1, 1));
        assert_eq!(date::from_days(365), (1992, 12, 31));
        // TPC-H end of world: 1998-12-01.
        let d = date::to_days(1998, 12, 1);
        assert_eq!(date::from_days(d), (1998, 12, 1));
    }

    #[test]
    fn date_round_trip_exhaustive_range() {
        // Every day of the TPC-H date range round-trips.
        let last = date::to_days(1998, 12, 31);
        for day in 0..=last {
            let (y, m, d) = date::from_days(day);
            assert_eq!(date::to_days(y, m, d), day);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Date(0).to_string(), "1992-01-01");
        assert_eq!(Value::Dict(3).to_string(), "#3");
    }
}
