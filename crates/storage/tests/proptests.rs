//! Property-based tests for the storage layer.

use anker_storage::value::{date, LogicalType, Value};
use anker_storage::{ColumnArea, ContiguousIndex, Dictionary, MultiIndex};
use anker_vmem::Kernel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value encoding round-trips bit-exactly.
    #[test]
    fn value_round_trip(bits in any::<u64>(), which in 0..4usize) {
        let (v, ty) = match which {
            0 => (Value::Int(bits as i64), LogicalType::Int),
            1 => {
                // Avoid NaN payload normalisation concerns by skipping NaNs.
                let f = f64::from_bits(bits);
                prop_assume!(!f.is_nan());
                (Value::Double(f), LogicalType::Double)
            }
            2 => (Value::Date(bits as i32), LogicalType::Date),
            _ => (Value::Dict(bits as u32), LogicalType::Dict),
        };
        prop_assert_eq!(Value::decode(v.encode(), ty), v);
    }

    /// Calendar conversion round-trips for any day in a 60-year window.
    #[test]
    fn date_round_trip(day in 0i32..22_000) {
        let (y, m, d) = date::from_days(day);
        prop_assert_eq!(date::to_days(y, m, d), day);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A column area behaves exactly like a Vec<u64> under random writes,
    /// including through the block-read path.
    #[test]
    fn column_area_matches_vec(
        rows in 1u32..3000,
        writes in proptest::collection::vec((any::<u32>(), any::<u64>()), 0..200),
    ) {
        let kernel = Kernel::default();
        let space = kernel.create_space();
        let area = ColumnArea::alloc(&space, rows).unwrap();
        let mut model = vec![0u64; rows as usize];
        for (row, value) in writes {
            let row = row % rows;
            area.set(row, value).unwrap();
            model[row as usize] = value;
        }
        // Point reads.
        for r in (0..rows).step_by(7) {
            prop_assert_eq!(area.get(r).unwrap(), model[r as usize]);
        }
        // Block reads across page boundaries.
        let mut buf = vec![0u64; rows as usize];
        area.read_block_into(0, rows, &mut buf).unwrap();
        prop_assert_eq!(&buf, &model);
    }

    /// Dictionary interning is a bijection over the inserted strings.
    #[test]
    fn dictionary_bijection(words in proptest::collection::vec("[a-z]{1,8}", 1..60)) {
        let dict = Dictionary::new();
        let codes: Vec<u32> = words.iter().map(|w| dict.intern(w)).collect();
        for (w, &c) in words.iter().zip(&codes) {
            prop_assert_eq!(dict.code(w), Some(c));
            prop_assert_eq!(&*dict.value(c), w.as_str());
        }
        let distinct: std::collections::HashSet<_> = words.iter().collect();
        prop_assert_eq!(dict.len(), distinct.len());
    }

    /// MultiIndex returns exactly the rows inserted for each key.
    #[test]
    fn multi_index_complete(keys in proptest::collection::vec(0i64..20, 1..200)) {
        let idx = MultiIndex::from_pairs(
            keys.iter().enumerate().map(|(r, &k)| (k, r as u32)),
        );
        for key in 0i64..20 {
            let expected: Vec<u32> = keys
                .iter()
                .enumerate()
                .filter(|(_, &k)| k == key)
                .map(|(r, _)| r as u32)
                .collect();
            prop_assert_eq!(idx.get(&key), expected.as_slice());
        }
    }

    /// ContiguousIndex reconstructs exactly the grouped runs.
    #[test]
    fn contiguous_index_runs(runs in proptest::collection::vec((0u8..255, 1u32..6), 1..40)) {
        // Build grouped keys with unique run keys.
        let mut keys = Vec::new();
        let mut expected = Vec::new();
        let mut row = 0u32;
        for (i, &(_, len)) in runs.iter().enumerate() {
            let key = i as i64; // unique per run, grouped by construction
            for _ in 0..len {
                keys.push(key);
            }
            expected.push((key, row, len));
            row += len;
        }
        let idx = ContiguousIndex::from_grouped_keys(keys.iter().copied());
        for (key, start, len) in expected {
            prop_assert_eq!(idx.get(&key), Some((start, len)));
        }
    }
}
