//! Snapshot-consistent checkpoint files.
//!
//! A checkpoint is a self-contained image of the database at one commit
//! timestamp: catalog (table names, row counts, column types, dictionary
//! contents) followed by every column's raw words. The engine produces it
//! by streaming the **frozen areas of one pinned snapshot epoch** — the
//! paper's high-frequency virtual snapshots are immutable by construction,
//! so the checkpointer needs no quiescence, no locks on the commit path,
//! and no fuzzy-page second pass: every byte it reads is the state at the
//! epoch timestamp, full stop.
//!
//! ## File format
//!
//! `ckpt-<ts>.ckpt` (timestamp zero-padded so lexicographic order is
//! numeric order):
//!
//! ```text
//! magic "ANKRCKP1" | version u32 | ts u64
//! catalog: n_tables u32, then per table the [`TableMeta`] codec
//! data: for each table, for each column, rows × u64 words
//! footer: crc32 u32 (over everything after the magic) | magic "ANKREND1"
//! ```
//!
//! The writer streams to `<name>.tmp` and renames on success — a crashed
//! checkpoint leaves only a `.tmp` the loader ignores — and the footer CRC
//! guards against silent truncation or bit rot on top of that.

use crate::error::{io_ctx, DuraError, Result};
use crate::record::{Reader, TableMeta};
use crate::wal::{sync_dir, HashingWriter};
use std::fs::{self, File};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const CKPT_MAGIC: &[u8; 8] = b"ANKRCKP1";
const END_MAGIC: &[u8; 8] = b"ANKREND1";
const VERSION: u32 = 1;

fn checkpoint_path(dir: &Path, ts: u64) -> PathBuf {
    dir.join(format!("ckpt-{ts:020}.ckpt"))
}

/// Catalog bytes: a table count followed by each table through the
/// [`TableMeta::encode_into`] codec the WAL's `CreateTable` records use —
/// one codec, two file formats, no drift.
fn encode_catalog(tables: &[TableMeta]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for t in tables {
        t.encode_into(&mut out);
    }
    out
}

/// Streaming checkpoint writer. Create with [`CheckpointWriter::create`],
/// feed every column of every catalog table **in catalog order** via
/// [`CheckpointWriter::write_words`], then [`CheckpointWriter::finish`].
pub struct CheckpointWriter {
    out: HashingWriter<BufWriter<File>>,
    tmp_path: PathBuf,
    final_path: PathBuf,
    dir: PathBuf,
    words_expected: u64,
    words_written: u64,
}

impl std::fmt::Debug for CheckpointWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointWriter")
            .field("path", &self.final_path)
            .finish()
    }
}

impl CheckpointWriter {
    /// Start a checkpoint at commit timestamp `ts` with the given catalog.
    pub fn create(dir: &Path, ts: u64, tables: &[TableMeta]) -> Result<CheckpointWriter> {
        fs::create_dir_all(dir).map_err(|e| io_ctx(e, "creating", dir))?;
        let final_path = checkpoint_path(dir, ts);
        let tmp_path = final_path.with_extension("ckpt.tmp");
        let file = File::create(&tmp_path).map_err(|e| io_ctx(e, "creating", &tmp_path))?;
        let mut out = HashingWriter::new(BufWriter::new(file));
        // The magic stays outside the CRC so the checksum spans exactly
        // the variable content.
        out.inner_write(CKPT_MAGIC)
            .map_err(|e| io_ctx(e, "writing", &tmp_path))?;
        let mut head = Vec::new();
        head.extend_from_slice(&VERSION.to_le_bytes());
        head.extend_from_slice(&ts.to_le_bytes());
        head.extend_from_slice(&encode_catalog(tables));
        out.write_all_hashed(&head)
            .map_err(|e| io_ctx(e, "writing", &tmp_path))?;
        let words_expected = tables
            .iter()
            .map(|t| t.rows as u64 * t.cols.len() as u64)
            .sum();
        Ok(CheckpointWriter {
            out,
            tmp_path,
            final_path,
            dir: dir.to_path_buf(),
            words_expected,
            words_written: 0,
        })
    }

    /// Append a chunk of column words (columns in catalog order, each
    /// column contributing exactly its table's row count).
    pub fn write_words(&mut self, words: &[u64]) -> Result<()> {
        // Chunked LE conversion: bounded scratch, no per-word write call.
        let mut buf = [0u8; 8 * 1024];
        for chunk in words.chunks(buf.len() / 8) {
            for (i, w) in chunk.iter().enumerate() {
                buf[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
            }
            self.out
                .write_all_hashed(&buf[..chunk.len() * 8])
                .map_err(|e| io_ctx(e, "writing", &self.tmp_path))?;
        }
        self.words_written += words.len() as u64;
        Ok(())
    }

    /// Seal the checkpoint: footer, fsync, atomic rename. Returns the
    /// final path.
    pub fn finish(self) -> Result<PathBuf> {
        if self.words_written != self.words_expected {
            return Err(DuraError::Corrupt(format!(
                "checkpoint wrote {} words, catalog promises {}",
                self.words_written, self.words_expected
            )));
        }
        let crc = self.out.crc();
        let mut inner = self.out.into_inner();
        inner
            .write_all(&crc.to_le_bytes())
            .and_then(|_| inner.write_all(END_MAGIC))
            .and_then(|_| inner.flush())
            .map_err(|e| io_ctx(e, "finishing", &self.tmp_path))?;
        inner
            .into_inner()
            .map_err(|e| io_ctx(e.into(), "flushing", &self.tmp_path))?
            .sync_all()
            .map_err(|e| io_ctx(e, "syncing", &self.tmp_path))?;
        fs::rename(&self.tmp_path, &self.final_path)
            .map_err(|e| io_ctx(e, "renaming", &self.tmp_path))?;
        sync_dir(&self.dir);
        Ok(self.final_path)
    }

    /// Abandon the checkpoint, removing the temporary file (best effort).
    pub fn abort(self) {
        let _ = fs::remove_file(&self.tmp_path);
    }
}

impl<W: Write> HashingWriter<W> {
    fn inner_write(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        // Outside the CRC (file magic only).
        self.inner_mut().write_all(bytes)
    }
}

/// A loaded checkpoint: catalog plus every column's words.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointData {
    /// The commit timestamp the image represents.
    pub ts: u64,
    /// Catalog in table-id order.
    pub tables: Vec<TableMeta>,
    /// `cols[t][c]` = words of column `c` of table `t`.
    pub cols: Vec<Vec<Vec<u64>>>,
}

/// Load and fully validate one checkpoint file.
pub fn load(path: &Path) -> Result<CheckpointData> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_ctx(e, "reading", path))?;
    let corrupt = |what: &str| DuraError::Corrupt(format!("{}: {what}", path.display()));
    let footer_len = 4 + END_MAGIC.len();
    if bytes.len() < 8 + footer_len || &bytes[..8] != CKPT_MAGIC {
        return Err(corrupt("bad header"));
    }
    if &bytes[bytes.len() - END_MAGIC.len()..] != END_MAGIC {
        return Err(corrupt("incomplete (no end marker)"));
    }
    let body = &bytes[8..bytes.len() - footer_len];
    let crc_stored = u32::from_le_bytes(
        bytes[bytes.len() - footer_len..bytes.len() - END_MAGIC.len()]
            .try_into()
            .unwrap(),
    );
    if crate::crc::crc32(body) != crc_stored {
        return Err(corrupt("checksum mismatch"));
    }
    // Parse the validated body through the shared catalog codec.
    let mut r = Reader::new(body);
    let version = r.u32()?;
    if version != VERSION {
        return Err(corrupt("unsupported version"));
    }
    let ts = r.u64()?;
    let n_tables = r.u32()? as usize;
    let mut tables = Vec::with_capacity(n_tables.min(u16::MAX as usize));
    for _ in 0..n_tables {
        tables.push(TableMeta::decode_from(&mut r)?);
    }
    let mut cols = Vec::with_capacity(tables.len());
    for t in &tables {
        let mut per_table = Vec::with_capacity(t.cols.len());
        for _ in 0..t.cols.len() {
            let raw = r.take(t.rows as usize * 8)?;
            let words = raw
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            per_table.push(words);
        }
        cols.push(per_table);
    }
    if !r.finished() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(CheckpointData { ts, tables, cols })
}

/// Find and load the newest complete checkpoint of `dir`, skipping
/// incomplete (`.tmp`) and corrupt files. `None` when no valid checkpoint
/// exists (including a missing directory).
pub fn load_newest(dir: &Path) -> Result<Option<CheckpointData>> {
    for (_, path) in list_checkpoints(dir)?.into_iter().rev() {
        match load(&path) {
            Ok(data) => return Ok(Some(data)),
            Err(DuraError::Corrupt(_)) => continue, // torn by a crash; try older
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// Delete all checkpoints except the newest `keep`, plus any stale `.tmp`
/// leftovers. Returns the number of files removed.
pub fn prune(dir: &Path, keep: usize) -> Result<u64> {
    let mut removed = 0u64;
    let list = list_checkpoints(dir)?;
    for (_, path) in list.iter().take(list.len().saturating_sub(keep)) {
        fs::remove_file(path).map_err(|e| io_ctx(e, "deleting", path))?;
        removed += 1;
    }
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry.path().extension().is_some_and(|e| e == "tmp") {
                let _ = fs::remove_file(entry.path());
                removed += 1;
            }
        }
    }
    if removed > 0 {
        sync_dir(dir);
    }
    Ok(removed)
}

/// Checkpoint files of `dir` in ascending timestamp order.
fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) if !dir.exists() => return Ok(out),
        Err(e) => return Err(io_ctx(e, "listing", dir)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_ctx(e, "listing", dir))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(ts) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.strip_suffix(".ckpt"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((ts, entry.path()));
        }
    }
    out.sort_by_key(|&(ts, _)| ts);
    Ok(out)
}
