//! # anker-dura — durability for AnKerDB
//!
//! The ninth subsystem: a redo **write-ahead log** with group commit, a
//! **snapshot-consistent checkpoint** format, and the file-level recovery
//! machinery behind `AnkerDb::open`. This crate owns the on-disk formats
//! and the fsync discipline; the engine (`anker-core`) owns *when* records
//! are written and how recovery re-applies them.
//!
//! The checkpoint design leans directly on the paper's core asset: frozen
//! virtual snapshot epochs are immutable by construction, so a
//! checkpointer holding an epoch pin can stream every column to disk with
//! **zero quiescence** — no commit ever waits on checkpoint I/O, the same
//! decoupling Hekaton-style main-memory engines use (Larson et al. 2011;
//! Li et al.'s snapshot-checkpointing survey calls this the
//! consistent-snapshot family).
//!
//! ```
//! use anker_dura::{replay_dir, Wal, WalRecord, WalWrite};
//!
//! let dir = std::env::temp_dir().join(format!("anker-dura-doc-{}", std::process::id()));
//! let wal = Wal::open(&dir).unwrap();
//! let lsn = wal
//!     .append(&WalRecord::Commit {
//!         commit_ts: 1,
//!         seq: 0,
//!         writes: vec![WalWrite { table: 0, col: 0, row: 7, word: 42 }],
//!     })
//!     .unwrap();
//! wal.sync_to(lsn).unwrap(); // group-commit fsync
//! drop(wal);
//! let summary = replay_dir(&dir, |_rec| Ok(())).unwrap();
//! assert_eq!(summary.commits, 1);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod checkpoint;
pub mod crc;
pub mod error;
pub mod record;
pub mod wal;

pub use checkpoint::{load_newest, prune, CheckpointData, CheckpointWriter};
pub use error::{DuraError, Result};
pub use record::{ColumnMeta, TableMeta, WalRecord, WalWrite, TY_DATE, TY_DICT, TY_DOUBLE, TY_INT};
pub use wal::{replay_dir, Lsn, ReplaySummary, Wal, WalStatsSnapshot};

/// How hard a commit promises to be on disk before it reports success.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityLevel {
    /// No write-ahead logging at all (the process-lifetime engine the
    /// paper evaluates). Default.
    #[default]
    Off,
    /// Append every commit to the WAL via a buffered OS write, no fsync:
    /// survives process crashes (`kill -9`) but not OS/power failures.
    Buffered,
    /// Append **and** group-commit `fdatasync` before the commit returns:
    /// survives OS/power failures up to the last acknowledged commit.
    Fsync,
}

impl DurabilityLevel {
    /// The level selected by the `ANKER_DURABILITY` environment variable
    /// (`off` / `buffered` / `fsync`, case-insensitive), or `None` when
    /// unset.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value — whoever set the variable asked
    /// for a specific durability contract, and silently running without
    /// one would be worse than refusing to start.
    pub fn from_env() -> Option<DurabilityLevel> {
        let v = std::env::var("ANKER_DURABILITY").ok()?;
        Some(Self::parse(&v).unwrap_or_else(|| {
            panic!("unrecognised ANKER_DURABILITY value {v:?} (expected off|buffered|fsync)")
        }))
    }

    /// Parse a level name (`off` / `buffered` / `fsync`, case-insensitive).
    pub fn parse(s: &str) -> Option<DurabilityLevel> {
        if s.eq_ignore_ascii_case("off") {
            Some(DurabilityLevel::Off)
        } else if s.eq_ignore_ascii_case("buffered") {
            Some(DurabilityLevel::Buffered)
        } else if s.eq_ignore_ascii_case("fsync") {
            Some(DurabilityLevel::Fsync)
        } else {
            None
        }
    }

    /// Short name (bench labels, logs).
    pub fn name(self) -> &'static str {
        match self {
            DurabilityLevel::Off => "off",
            DurabilityLevel::Buffered => "buffered",
            DurabilityLevel::Fsync => "fsync",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("anker-dura-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn commit(ts: u64, row: u32, word: u64) -> WalRecord {
        WalRecord::Commit {
            commit_ts: ts,
            seq: ts, // tests append in ts order; seq mirrors it
            writes: vec![WalWrite {
                table: 0,
                col: 0,
                row,
                word,
            }],
        }
    }

    #[test]
    fn append_sync_replay_round_trip() {
        let dir = tmp("round-trip");
        let wal = Wal::open(&dir).unwrap();
        let mut last = 0;
        for ts in 1..=10u64 {
            last = wal.append(&commit(ts, ts as u32, ts * 100)).unwrap();
        }
        wal.sync_to(last).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.commit_records, 10);
        assert!(stats.syncs >= 1);
        drop(wal);
        let mut seen = Vec::new();
        let summary = replay_dir(&dir, |r| {
            seen.push(r);
            Ok(())
        })
        .unwrap();
        assert_eq!(summary.commits, 10);
        assert_eq!(summary.last_commit_ts, 10);
        assert!(!summary.torn_tail);
        assert_eq!(seen[4], commit(5, 5, 500));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_stops_cleanly_and_open_repairs_it() {
        let dir = tmp("torn");
        let wal = Wal::open(&dir).unwrap();
        for ts in 1..=5u64 {
            wal.append(&commit(ts, 0, ts)).unwrap();
        }
        wal.sync_all().unwrap();
        drop(wal);
        // Tear the single segment mid-record.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.to_string_lossy().contains("wal-"))
            .unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let summary = replay_dir(&dir, |_| Ok(())).unwrap();
        assert_eq!(summary.commits, 4, "last record torn away");
        assert!(summary.torn_tail);
        // Re-opening repairs the tear and appends to a fresh segment.
        let wal = Wal::open(&dir).unwrap();
        let lsn = wal.append(&commit(9, 0, 9)).unwrap();
        wal.sync_to(lsn).unwrap();
        drop(wal);
        let summary = replay_dir(&dir, |_| Ok(())).unwrap();
        assert_eq!(summary.commits, 5, "4 surviving + 1 new");
        assert!(!summary.torn_tail, "tear was repaired");
        assert_eq!(summary.last_commit_ts, 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retirement_deletes_only_covered_segments() {
        let dir = tmp("retire");
        let wal = Wal::open(&dir).unwrap();
        for ts in 1..=4u64 {
            wal.append(&commit(ts, 0, ts)).unwrap();
        }
        // Checkpoint at ts 4: rotate, old segment (max_ts 4) is covered.
        wal.retire_up_to(4).unwrap();
        assert_eq!(wal.segment_count().unwrap(), 1);
        for ts in 5..=6u64 {
            wal.append(&commit(ts, 0, ts)).unwrap();
        }
        // Checkpoint at ts 5 only: the rotated segment carries ts 6 and
        // must survive.
        wal.retire_up_to(5).unwrap();
        assert_eq!(wal.segment_count().unwrap(), 2);
        assert_eq!(wal.stats().segments_retired, 1);
        drop(wal);
        let summary = replay_dir(&dir, |_| Ok(())).unwrap();
        assert_eq!(summary.commits, 2, "only the uncovered commits remain");
        assert_eq!(summary.last_commit_ts, 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_round_trip_and_newest_selection() {
        let dir = tmp("ckpt");
        let tables = vec![TableMeta {
            name: "t".into(),
            rows: 3,
            cols: vec![
                ColumnMeta {
                    name: "a".into(),
                    ty: TY_INT,
                    dict_values: None,
                },
                ColumnMeta {
                    name: "f".into(),
                    ty: TY_DICT,
                    dict_values: Some(vec!["x".into(), "y".into()]),
                },
            ],
        }];
        for ts in [7u64, 9] {
            let mut w = CheckpointWriter::create(&dir, ts, &tables).unwrap();
            w.write_words(&[ts, 2, 3]).unwrap(); // column a
            w.write_words(&[0, 1, 0]).unwrap(); // column f
            w.finish().unwrap();
        }
        let data = load_newest(&dir).unwrap().unwrap();
        assert_eq!(data.ts, 9);
        assert_eq!(data.tables, tables);
        assert_eq!(data.cols[0][0], vec![9, 2, 3]);
        assert_eq!(data.cols[0][1], vec![0, 1, 0]);
        // A corrupt newest file falls back to the older one.
        let newest = dir.join(format!("ckpt-{:020}.ckpt", 9u64));
        let mut bytes = std::fs::read(&newest).unwrap();
        let n = bytes.len();
        bytes[n - 20] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        assert_eq!(load_newest(&dir).unwrap().unwrap().ts, 7);
        // Prune keeps the newest `keep` files.
        prune(&dir, 1).unwrap();
        assert_eq!(
            load_newest(&dir).unwrap(),
            None,
            "only the corrupt one left"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incomplete_checkpoint_is_ignored() {
        let dir = tmp("ckpt-incomplete");
        let tables = vec![TableMeta {
            name: "t".into(),
            rows: 2,
            cols: vec![ColumnMeta {
                name: "a".into(),
                ty: TY_INT,
                dict_values: None,
            }],
        }];
        // A writer that never finishes leaves only a .tmp file.
        let mut w = CheckpointWriter::create(&dir, 5, &tables).unwrap();
        w.write_words(&[1, 2]).unwrap();
        drop(w);
        assert_eq!(load_newest(&dir).unwrap(), None);
        // A finished one with a wrong word count refuses to seal.
        let w = CheckpointWriter::create(&dir, 6, &tables).unwrap();
        assert!(w.finish().is_err(), "word count mismatch must not seal");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_batches_concurrent_syncs() {
        let dir = tmp("group");
        let wal = std::sync::Arc::new(Wal::open(&dir).unwrap());
        let n_threads = 4u64;
        let per_thread = 25u64;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let wal = std::sync::Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let ts = t * per_thread + i + 1;
                        let lsn = wal.append(&commit(ts, 0, ts)).unwrap();
                        wal.sync_to(lsn).unwrap();
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.commit_records, n_threads * per_thread);
        assert!(
            stats.syncs <= stats.commit_records,
            "group commit must never sync more than once per commit"
        );
        drop(wal);
        let summary = replay_dir(&dir, |_| Ok(())).unwrap();
        assert_eq!(summary.commits, n_threads * per_thread);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn second_opener_is_locked_out() {
        let dir = tmp("lock");
        let wal = Wal::open(&dir).unwrap();
        let second = Wal::open(&dir);
        assert!(
            matches!(second, Err(DuraError::Io(ref m)) if m.contains("locked")),
            "a second writer must be refused, got {second:?}"
        );
        drop(wal);
        // The lock dies with the holder.
        Wal::open(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durability_level_parsing() {
        assert_eq!(
            DurabilityLevel::parse("FSYNC"),
            Some(DurabilityLevel::Fsync)
        );
        assert_eq!(
            DurabilityLevel::parse("buffered"),
            Some(DurabilityLevel::Buffered)
        );
        assert_eq!(DurabilityLevel::parse("off"), Some(DurabilityLevel::Off));
        assert_eq!(DurabilityLevel::parse("nope"), None);
        assert_eq!(DurabilityLevel::Fsync.name(), "fsync");
    }
}
