//! Errors of the durability layer.

use std::fmt;

/// Errors the WAL, checkpoint, and recovery paths can produce.
///
/// `Io` carries the rendered `std::io::Error` (the layer above stores
/// errors by value and compares them in tests, which `io::Error` itself
/// does not support); `Corrupt` means a file failed structural validation
/// beyond the tolerated torn tail of the newest WAL segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DuraError {
    /// An operating-system I/O failure, with context.
    Io(String),
    /// A WAL segment or checkpoint file is structurally invalid (bad
    /// magic, mid-file checksum mismatch, impossible lengths). A torn
    /// *tail* of the newest segment is not corruption — replay stops
    /// cleanly there instead.
    Corrupt(String),
}

impl fmt::Display for DuraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DuraError::Io(msg) => write!(f, "durability I/O error: {msg}"),
            DuraError::Corrupt(msg) => write!(f, "durability file corrupt: {msg}"),
        }
    }
}

impl std::error::Error for DuraError {}

impl From<std::io::Error> for DuraError {
    fn from(e: std::io::Error) -> DuraError {
        DuraError::Io(e.to_string())
    }
}

/// Result alias of the durability layer.
pub type Result<T> = std::result::Result<T, DuraError>;

/// Attach a path to an I/O error (the bare `io::Error` rarely says which
/// file it was).
pub(crate) fn io_ctx(e: std::io::Error, what: &str, path: &std::path::Path) -> DuraError {
    DuraError::Io(format!("{what} {}: {e}", path.display()))
}
