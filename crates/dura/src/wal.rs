//! The redo write-ahead log: segmented, append-only, CRC-framed, with
//! **group commit**.
//!
//! ## Framing and segments
//!
//! A segment file (`wal-<seq>.log`) starts with an 16-byte header (magic +
//! sequence number) followed by frames `[len: u32][crc32: u32][payload]`.
//! The CRC covers the payload only; the length field is authoritative for
//! the payload size. Appends go to the newest segment; a **rotation**
//! (checkpoint time) syncs and closes it and opens the next sequence
//! number. Closed segments whose newest commit timestamp is at or below a
//! checkpoint's epoch timestamp are deleted — that is the WAL truncation
//! the checkpointer performs.
//!
//! ## Torn tails
//!
//! A crash can tear the newest segment mid-frame. Replay tolerates exactly
//! that: an incomplete or checksum-failing frame at the tail of the
//! *final* segment ends replay cleanly at the last complete record; the
//! same condition in any earlier segment is real corruption and errors.
//! [`Wal::open`] *repairs* the tear (truncates the file to the valid
//! prefix) before opening a fresh segment for new appends, so a tear can
//! never end up in the middle of the live log.
//!
//! ## Group commit
//!
//! Appends are serialized by the engine's commit section and return an
//! [`Lsn`] (a monotone byte count). Durability is a separate, batched
//! step: [`Wal::sync_to`] blocks until the log is durable past the given
//! LSN, using a leader/follower protocol — one caller becomes the sync
//! leader and issues a single `fdatasync` that covers every record
//! appended before it started, while later committers wait and are
//! covered by the next leader's sync. Appends proceed *during* the
//! leader's fsync (the leader syncs through a second file handle), which
//! is what makes the batching effective: an fsync in flight absorbs the
//! records of every commit that lands meanwhile.

use crate::crc::{crc32, Crc32};
use crate::error::{io_ctx, DuraError, Result};
use crate::record::WalRecord;
use anker_util::lockcheck::{self, classes};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Log sequence number: total frame bytes appended since this [`Wal`] was
/// opened. Monotone within a process lifetime; only compared, never
/// persisted.
pub type Lsn = u64;

const SEG_MAGIC: &[u8; 8] = b"ANKRWAL1";
const SEG_HEADER_LEN: u64 = 16;
/// Sanity cap on a single frame (a fill chunk is ≤ 64 Ki words).
const MAX_FRAME_PAYLOAD: u32 = 64 << 20;

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:010}.log"))
}

/// Best-effort directory fsync (required by POSIX for created/renamed/
/// deleted entries to be durable; never worth failing an append over).
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// A closed (no longer appended) segment awaiting retirement.
#[derive(Debug, Clone)]
struct ClosedSegment {
    path: PathBuf,
    /// Newest commit timestamp any frame of the segment carries (0 when
    /// the segment holds only catalog/load records).
    max_ts: u64,
}

#[cfg(unix)]
extern "C" {
    fn flock(fd: std::os::raw::c_int, operation: std::os::raw::c_int) -> std::os::raw::c_int;
}

/// Take an exclusive, non-blocking advisory lock on `dir/wal.lock` so two
/// processes can never append to (or repair) the same log — the second
/// opener fails fast instead of corrupting the first one's segments. The
/// lock dies with the file descriptor, so even `kill -9` releases it.
/// Advisory-lock-free platforms skip the check.
fn lock_dir(dir: &Path) -> Result<File> {
    let path = dir.join("wal.lock");
    let file = OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(&path)
        .map_err(|e| io_ctx(e, "creating", &path))?;
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        const LOCK_EX: std::os::raw::c_int = 2;
        const LOCK_NB: std::os::raw::c_int = 4;
        // SAFETY(provenance: flock, file): the syscall takes an owned,
        // open descriptor and valid flags; it touches no caller memory.
        if unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) } != 0 {
            return Err(DuraError::Io(format!(
                "durability directory {} is locked by another process",
                dir.display()
            )));
        }
    }
    Ok(file)
}

/// Monotonic WAL counters.
#[derive(Debug, Default)]
struct WalStats {
    appends: AtomicU64,
    commit_records: AtomicU64,
    bytes_appended: AtomicU64,
    syncs: AtomicU64,
    segments_created: AtomicU64,
    segments_retired: AtomicU64,
}

/// Point-in-time copy of the WAL counters (bench/driver reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStatsSnapshot {
    /// Records appended (all kinds).
    pub appends: u64,
    /// Commit records among them.
    pub commit_records: u64,
    /// Frame bytes appended.
    pub bytes_appended: u64,
    /// `fdatasync` calls issued (group commit batches several commits per
    /// sync; `commit_records / syncs` is the batching factor).
    pub syncs: u64,
    /// Segments created (including the one opened at boot).
    pub segments_created: u64,
    /// Segments deleted by checkpoint truncation.
    pub segments_retired: u64,
}

struct Appender {
    file: File,
    seq: u64,
    seg_max_ts: u64,
}

#[derive(Default)]
struct SyncState {
    durable: Lsn,
    leader_active: bool,
}

/// The write-ahead log of one database directory. See the module docs.
pub struct Wal {
    dir: PathBuf,
    appender: lockcheck::Mutex<Appender>,
    /// Second handle onto the current segment, used by the group-commit
    /// leader so an fsync in flight never blocks appends. Swapped at
    /// rotation (lock order per LOCKS.toml: `appender` before
    /// `sync_handle`).
    sync_handle: lockcheck::Mutex<File>,
    closed: lockcheck::Mutex<Vec<ClosedSegment>>,
    appended: AtomicU64,
    sync_state: lockcheck::Mutex<SyncState>,
    sync_cv: lockcheck::Condvar,
    stats: WalStats,
    /// Held for the WAL's lifetime; its advisory lock is the
    /// single-writer guarantee (see [`lock_dir`]).
    _dir_lock: File,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("appended", &self.appended.load(Ordering::Relaxed))
            .finish()
    }
}

impl Wal {
    /// Open the WAL of `dir` for appending: repair the newest existing
    /// segment's torn tail (if any), register all existing segments as
    /// closed (replay has already consumed them), and start a fresh
    /// segment for new records. Creates `dir` if missing.
    pub fn open(dir: &Path) -> Result<Wal> {
        fs::create_dir_all(dir).map_err(|e| io_ctx(e, "creating", dir))?;
        let dir_lock = lock_dir(dir)?;
        let mut segments = list_segments(dir)?;
        segments.sort_by_key(|&(seq, _)| seq);
        let mut closed = Vec::with_capacity(segments.len());
        let mut next_seq = 1;
        for (idx, (seq, path)) in segments.iter().enumerate() {
            let last = idx + 1 == segments.len();
            let scan = scan_segment(path, |_| Ok(()))?;
            if scan.torn {
                if !last {
                    return Err(DuraError::Corrupt(format!(
                        "segment {} has an invalid frame before the final segment",
                        path.display()
                    )));
                }
                // Repair: drop the torn tail so the next replay never
                // stops early in the middle of the live log.
                let f = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| io_ctx(e, "opening for repair", path))?;
                f.set_len(scan.valid_len)
                    .map_err(|e| io_ctx(e, "truncating torn tail of", path))?;
                f.sync_data().map_err(|e| io_ctx(e, "syncing", path))?;
            }
            closed.push(ClosedSegment {
                path: path.clone(),
                max_ts: scan.max_ts,
            });
            next_seq = seq + 1;
        }
        let (file, path) = create_segment(dir, next_seq)?;
        let sync_handle = File::open(&path).map_err(|e| io_ctx(e, "re-opening", &path))?;
        sync_dir(dir);
        let wal = Wal {
            dir: dir.to_path_buf(),
            appender: lockcheck::Mutex::new(
                &classes::WAL_APPENDER,
                0,
                Appender {
                    file,
                    seq: next_seq,
                    seg_max_ts: 0,
                },
            ),
            sync_handle: lockcheck::Mutex::new(&classes::WAL_SYNC_HANDLE, 0, sync_handle),
            closed: lockcheck::Mutex::new(&classes::WAL_CLOSED, 0, closed),
            appended: AtomicU64::new(0),
            sync_state: lockcheck::Mutex::new(&classes::WAL_SYNC_STATE, 0, SyncState::default()),
            sync_cv: lockcheck::Condvar::new(),
            stats: WalStats::default(),
            _dir_lock: dir_lock,
        };
        wal.stats.segments_created.fetch_add(1, Ordering::Relaxed);
        Ok(wal)
    }

    /// The directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append one record (no durability implied — pair with
    /// [`Wal::sync_to`] for that). Returns the LSN the record ends at.
    /// Callers serialize appends of *ordered* records themselves (the
    /// engine's commit section already does); concurrent appends are safe
    /// but interleave arbitrarily.
    pub fn append(&self, rec: &WalRecord) -> Result<Lsn> {
        let payload = rec.encode();
        debug_assert!(payload.len() as u32 <= MAX_FRAME_PAYLOAD);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut ap = self.appender.lock();
        ap.file
            .write_all(&frame)
            .map_err(|e| io_ctx(e, "appending to", &segment_path(&self.dir, ap.seq)))?;
        if let Some(ts) = rec.commit_ts() {
            ap.seg_max_ts = ap.seg_max_ts.max(ts);
            self.stats.commit_records.fetch_add(1, Ordering::Relaxed);
        }
        // ORDERING: Release publishes the `write_all` above before the new
        // high-water mark; pairs with the sync leader's Acquire load, so a
        // covered LSN implies the bytes were handed to the OS.
        let lsn = self
            .appended
            .fetch_add(frame.len() as u64, Ordering::Release)
            + frame.len() as u64;
        self.stats.appends.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_appended
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Block until the log is durable at or past `lsn` (which must have
    /// been appended already). Group commit: the first waiter becomes the
    /// sync leader and one `fdatasync` covers every record appended
    /// before it started; everyone else just waits for a covering sync.
    pub fn sync_to(&self, lsn: Lsn) -> Result<()> {
        loop {
            {
                let mut st = self.sync_state.lock();
                loop {
                    if st.durable >= lsn {
                        return Ok(());
                    }
                    if !st.leader_active {
                        st.leader_active = true;
                        break;
                    }
                    self.sync_cv.wait(&mut st);
                }
            }
            // Leader: everything appended up to here is covered by the
            // fsync below — including `lsn`, which our caller appended
            // before calling in.
            // ORDERING: Acquire pairs with `append`'s Release fetch_add —
            // the mark we fsync up to only counts fully-written frames.
            let target = self.appended.load(Ordering::Acquire);
            // Leader-side fsync latency (handle-lock wait included — it is
            // part of what followers end up waiting for).
            let obs_tok = obs::span_begin(obs::stage!("wal_fsync"));
            let res = {
                let handle = self.sync_handle.lock();
                handle.sync_data()
            };
            obs::span_end(obs_tok);
            self.stats.syncs.fetch_add(1, Ordering::Relaxed);
            let mut st = self.sync_state.lock();
            st.leader_active = false;
            match res {
                Ok(()) => {
                    st.durable = st.durable.max(target);
                    self.sync_cv.notify_all();
                    if st.durable >= lsn {
                        return Ok(());
                    }
                    // Raced a rotation mid-sync; take another lap.
                }
                Err(e) => {
                    self.sync_cv.notify_all();
                    return Err(io_ctx(e, "syncing", &self.dir));
                }
            }
        }
    }

    /// Flush and `fdatasync` everything appended so far (clean shutdown).
    pub fn sync_all(&self) -> Result<()> {
        let target = {
            let ap = self.appender.lock();
            ap.file
                .sync_data()
                .map_err(|e| io_ctx(e, "syncing", &segment_path(&self.dir, ap.seq)))?;
            // ORDERING: Acquire pairs with `append`'s Release fetch_add;
            // under the append lock the mark is also exact.
            self.appended.load(Ordering::Acquire)
        };
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        let mut st = self.sync_state.lock();
        st.durable = st.durable.max(target);
        self.sync_cv.notify_all();
        Ok(())
    }

    /// Close the current segment (sync it, register it as closed) and
    /// open the next one. Checkpoints call this **before** snapshotting
    /// the catalog: afterwards, every record in a closed segment provably
    /// predates the catalog, so a closed segment whose commits a
    /// checkpoint covers holds nothing the checkpoint does not.
    pub fn rotate(&self) -> Result<()> {
        // Rotate under the append lock so no record can land in the old
        // segment after its closing sync.
        {
            let mut ap = self.appender.lock();
            ap.file
                .sync_data()
                .map_err(|e| io_ctx(e, "syncing", &segment_path(&self.dir, ap.seq)))?;
            let old_path = segment_path(&self.dir, ap.seq);
            let old_max = ap.seg_max_ts;
            let next = ap.seq + 1;
            let (file, path) = create_segment(&self.dir, next)?;
            let fresh_handle = File::open(&path).map_err(|e| io_ctx(e, "re-opening", &path))?;
            ap.file = file;
            ap.seq = next;
            ap.seg_max_ts = 0;
            self.closed.lock().push(ClosedSegment {
                path: old_path,
                max_ts: old_max,
            });
            // Everything in closed segments is durable now.
            // ORDERING: Acquire pairs with `append`'s Release fetch_add;
            // under the append lock the mark is also exact.
            let mut st = self.sync_state.lock();
            st.durable = st.durable.max(self.appended.load(Ordering::Acquire));
            drop(st);
            *self.sync_handle.lock() = fresh_handle;
            self.stats.segments_created.fetch_add(1, Ordering::Relaxed);
        }
        sync_dir(&self.dir);
        Ok(())
    }

    /// Delete every closed segment whose newest commit timestamp is at or
    /// below `ts` — the WAL truncation step of a checkpoint at epoch
    /// timestamp `ts`. Only call after the covering checkpoint is durably
    /// on disk (and after the [`Wal::rotate`] that preceded its catalog
    /// snapshot). Returns the number of segments deleted.
    pub fn delete_covered(&self, ts: u64) -> Result<u64> {
        let mut removed = 0u64;
        let mut closed = self.closed.lock();
        let mut keep = Vec::with_capacity(closed.len());
        for seg in closed.drain(..) {
            if seg.max_ts <= ts {
                fs::remove_file(&seg.path).map_err(|e| io_ctx(e, "deleting", &seg.path))?;
                removed += 1;
            } else {
                keep.push(seg);
            }
        }
        *closed = keep;
        drop(closed);
        if removed > 0 {
            sync_dir(&self.dir);
            self.stats
                .segments_retired
                .fetch_add(removed, Ordering::Relaxed);
        }
        Ok(removed)
    }

    /// [`Wal::rotate`] + [`Wal::delete_covered`] in one step, for callers
    /// whose catalog cannot change concurrently.
    pub fn retire_up_to(&self, ts: u64) -> Result<u64> {
        self.rotate()?;
        self.delete_covered(ts)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> WalStatsSnapshot {
        let o = Ordering::Relaxed;
        WalStatsSnapshot {
            appends: self.stats.appends.load(o),
            commit_records: self.stats.commit_records.load(o),
            bytes_appended: self.stats.bytes_appended.load(o),
            syncs: self.stats.syncs.load(o),
            segments_created: self.stats.segments_created.load(o),
            segments_retired: self.stats.segments_retired.load(o),
        }
    }

    /// Number of live segment files in the directory (diagnostics and
    /// truncation tests).
    pub fn segment_count(&self) -> Result<usize> {
        Ok(list_segments(&self.dir)?.len())
    }
}

/// Outcome of replaying a WAL directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Records decoded and delivered.
    pub records: u64,
    /// Commit records among them.
    pub commits: u64,
    /// Newest commit timestamp delivered (0 if none).
    pub last_commit_ts: u64,
    /// True when the final segment ended in a torn frame (replay stopped
    /// at the last complete record).
    pub torn_tail: bool,
}

/// Replay every record of the WAL in `dir`, in append order, calling `f`
/// for each. A torn tail in the final segment ends replay cleanly (the
/// summary says so); an invalid frame anywhere else is
/// [`DuraError::Corrupt`]. An empty or missing directory replays nothing.
pub fn replay_dir(dir: &Path, mut f: impl FnMut(WalRecord) -> Result<()>) -> Result<ReplaySummary> {
    let mut segments = match list_segments(dir) {
        Ok(s) => s,
        Err(_) if !dir.exists() => return Ok(ReplaySummary::default()),
        Err(e) => return Err(e),
    };
    segments.sort_by_key(|&(seq, _)| seq);
    let mut summary = ReplaySummary::default();
    for (idx, (_, path)) in segments.iter().enumerate() {
        let last = idx + 1 == segments.len();
        let scan = scan_segment(path, |payload| {
            let rec = WalRecord::decode(payload)?;
            summary.records += 1;
            if let Some(ts) = rec.commit_ts() {
                summary.commits += 1;
                summary.last_commit_ts = summary.last_commit_ts.max(ts);
            }
            f(rec)
        })?;
        if scan.torn {
            if !last {
                return Err(DuraError::Corrupt(format!(
                    "segment {} has an invalid frame before the final segment",
                    path.display()
                )));
            }
            summary.torn_tail = true;
        }
    }
    Ok(summary)
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_ctx(e, "listing", dir))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_ctx(e, "listing", dir))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    Ok(out)
}

fn create_segment(dir: &Path, seq: u64) -> Result<(File, PathBuf)> {
    let path = segment_path(dir, seq);
    let mut file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)
        .map_err(|e| io_ctx(e, "creating", &path))?;
    let mut header = Vec::with_capacity(SEG_HEADER_LEN as usize);
    header.extend_from_slice(SEG_MAGIC);
    header.extend_from_slice(&seq.to_le_bytes());
    file.write_all(&header)
        .map_err(|e| io_ctx(e, "writing header of", &path))?;
    Ok((file, path))
}

struct SegScan {
    /// Byte length of the valid prefix (header + complete frames).
    valid_len: u64,
    /// Newest commit timestamp of any complete frame.
    max_ts: u64,
    /// True when trailing bytes after the valid prefix exist but do not
    /// form a complete, checksum-clean frame.
    torn: bool,
}

/// Walk the frames of one segment, calling `on_payload` per complete
/// frame. Decoding errors from the callback propagate (a frame that
/// passes its CRC but fails structural decode is corruption, not a tear).
fn scan_segment(path: &Path, mut on_payload: impl FnMut(&[u8]) -> Result<()>) -> Result<SegScan> {
    let mut file = File::open(path).map_err(|e| io_ctx(e, "opening", path))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| io_ctx(e, "reading", path))?;
    if bytes.len() < SEG_HEADER_LEN as usize || &bytes[..8] != SEG_MAGIC {
        return Err(DuraError::Corrupt(format!(
            "{} is not a WAL segment (bad header)",
            path.display()
        )));
    }
    let mut pos = SEG_HEADER_LEN as usize;
    let mut max_ts = 0u64;
    loop {
        if pos == bytes.len() {
            return Ok(SegScan {
                valid_len: pos as u64,
                max_ts,
                torn: false,
            });
        }
        let torn = |pos: usize| SegScan {
            valid_len: pos as u64,
            max_ts,
            torn: true,
        };
        if bytes.len() - pos < 8 {
            return Ok(torn(pos));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME_PAYLOAD || bytes.len() - pos - 8 < len as usize {
            return Ok(torn(pos));
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            return Ok(torn(pos));
        }
        // Cheap peek for the segment's max commit ts (tag 3 = Commit).
        if payload.len() >= 9 && payload[0] == 3 {
            max_ts = max_ts.max(u64::from_le_bytes(payload[1..9].try_into().unwrap()));
        }
        on_payload(payload)?;
        pos += 8 + len as usize;
    }
}

/// Streaming CRC over everything written — shared by the checkpoint
/// writer; lives here so both files agree on one hashing discipline.
pub(crate) struct HashingWriter<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> HashingWriter<W> {
    pub fn new(inner: W) -> HashingWriter<W> {
        HashingWriter {
            inner,
            crc: Crc32::new(),
        }
    }

    pub fn write_all_hashed(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.inner.write_all(bytes)?;
        self.crc.update(bytes);
        Ok(())
    }

    pub fn crc(&self) -> u32 {
        self.crc.finish()
    }

    pub fn inner_mut(&mut self) -> &mut W {
        &mut self.inner
    }

    pub fn into_inner(self) -> W {
        self.inner
    }
}
