//! The redo-log record set and its compact binary codec.
//!
//! Records describe everything the engine must re-execute to rebuild the
//! in-memory state from an empty database (or from a checkpoint):
//! catalog changes ([`WalRecord::CreateTable`]), bulk loads
//! ([`WalRecord::FillColumn`]), and committed write sets
//! ([`WalRecord::Commit`]). The codec is deliberately primitive — a tag
//! byte plus little-endian fixed-width fields and length-prefixed strings
//! — so a record's size is predictable and decoding needs no allocation
//! beyond the payload vectors themselves.
//!
//! Framing (length + CRC) is the WAL's job, not the record's: see
//! [`crate::wal`].

use crate::error::{DuraError, Result};

/// Storage type of a column, as persisted. Mirrors the engine's logical
/// types without depending on the storage crate (the dependency points the
/// other way: the engine maps its enum onto these codes).
pub const TY_INT: u8 = 0;
/// IEEE-754 double (bits of the stored word).
pub const TY_DOUBLE: u8 = 1;
/// Days since the 1992-01-01 epoch.
pub const TY_DATE: u8 = 2;
/// Dictionary code; the column carries its dictionary's values.
pub const TY_DICT: u8 = 3;

/// Persisted definition of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Attribute name.
    pub name: String,
    /// One of the `TY_*` codes.
    pub ty: u8,
    /// Dictionary contents in code order (`Some` iff `ty == TY_DICT`).
    /// Snapshot at serialisation time; dictionaries are append-only, so
    /// every code a persisted word references is covered as long as no
    /// new values were interned after the snapshot (see DESIGN.md,
    /// "Durability" — the engine's workloads only pick existing codes).
    pub dict_values: Option<Vec<String>>,
}

/// Persisted definition of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Row capacity.
    pub rows: u32,
    /// Columns in schema order.
    pub cols: Vec<ColumnMeta>,
}

/// One write of a committed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalWrite {
    /// Table index in creation order.
    pub table: u16,
    /// Column index within the table's schema.
    pub col: u16,
    /// Row number.
    pub row: u32,
    /// The raw 8-byte word the commit installed.
    pub word: u64,
}

/// A redo-log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A table was created. `table` is its index in creation order —
    /// recovery checks it matches the engine's own numbering.
    CreateTable { table: u16, meta: TableMeta },
    /// A bulk load wrote `words` starting at `start_row` of `(table,
    /// col)`. Loads are chunked into bounded records so a torn tail never
    /// costs more than one chunk.
    FillColumn {
        table: u16,
        col: u16,
        start_row: u32,
        words: Vec<u64>,
    },
    /// A transaction committed at `commit_ts` with this write set, in
    /// install order. `seq` is the engine's append sequence number: the
    /// concurrent commit pipeline appends commit records **out of
    /// timestamp order** (file order = append order), and recovery sorts
    /// buffered commits by `(commit_ts, seq)` before applying them. The
    /// encoding keeps `commit_ts` in payload bytes 1..9 — right after the
    /// tag — so segment scans can peek a commit's timestamp without a full
    /// decode.
    Commit {
        commit_ts: u64,
        seq: u64,
        writes: Vec<WalWrite>,
    },
}

const TAG_CREATE: u8 = 1;
const TAG_FILL: u8 = 2;
const TAG_COMMIT: u8 = 3;

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian reader over a record or checkpoint
/// payload — the one decoding discipline both file formats share.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| DuraError::Corrupt("record payload truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DuraError::Corrupt("record string is not UTF-8".into()))
    }

    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl TableMeta {
    /// Append this table definition's bytes — the single catalog codec
    /// shared by [`WalRecord::CreateTable`] frames and checkpoint
    /// catalogs, so the two formats cannot drift.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        put_str(out, &self.name);
        out.extend_from_slice(&self.rows.to_le_bytes());
        out.extend_from_slice(&(self.cols.len() as u16).to_le_bytes());
        for c in &self.cols {
            put_str(out, &c.name);
            out.push(c.ty);
            match &c.dict_values {
                None => out.push(0),
                Some(values) => {
                    out.push(1);
                    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
                    for v in values {
                        put_str(out, v);
                    }
                }
            }
        }
    }

    /// Decode one table definition produced by [`TableMeta::encode_into`].
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<TableMeta> {
        let name = r.str()?;
        let rows = r.u32()?;
        let n_cols = r.u16()? as usize;
        let mut cols = Vec::with_capacity(n_cols.min(4096));
        for _ in 0..n_cols {
            let name = r.str()?;
            let ty = r.u8()?;
            if ty > TY_DICT {
                return Err(DuraError::Corrupt(format!("unknown column type {ty}")));
            }
            let dict_values = match r.u8()? {
                0 => None,
                1 => {
                    let n = r.u32()? as usize;
                    let mut values = Vec::with_capacity(n.min(65_536));
                    for _ in 0..n {
                        values.push(r.str()?);
                    }
                    Some(values)
                }
                other => return Err(DuraError::Corrupt(format!("bad dict marker {other}"))),
            };
            cols.push(ColumnMeta {
                name,
                ty,
                dict_values,
            });
        }
        Ok(TableMeta { name, rows, cols })
    }
}

impl WalRecord {
    /// Serialise to the payload bytes the WAL frames.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_size_hint());
        match self {
            WalRecord::CreateTable { table, meta } => {
                out.push(TAG_CREATE);
                out.extend_from_slice(&table.to_le_bytes());
                meta.encode_into(&mut out);
            }
            WalRecord::FillColumn {
                table,
                col,
                start_row,
                words,
            } => {
                out.push(TAG_FILL);
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&col.to_le_bytes());
                out.extend_from_slice(&start_row.to_le_bytes());
                out.extend_from_slice(&(words.len() as u32).to_le_bytes());
                for w in words {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
            WalRecord::Commit {
                commit_ts,
                seq,
                writes,
            } => {
                out.push(TAG_COMMIT);
                // commit_ts first: segment scans peek bytes 1..9.
                out.extend_from_slice(&commit_ts.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(writes.len() as u32).to_le_bytes());
                for w in writes {
                    out.extend_from_slice(&w.table.to_le_bytes());
                    out.extend_from_slice(&w.col.to_le_bytes());
                    out.extend_from_slice(&w.row.to_le_bytes());
                    out.extend_from_slice(&w.word.to_le_bytes());
                }
            }
        }
        out
    }

    fn encoded_size_hint(&self) -> usize {
        match self {
            WalRecord::CreateTable { .. } => 256,
            WalRecord::FillColumn { words, .. } => 16 + words.len() * 8,
            WalRecord::Commit { writes, .. } => 24 + writes.len() * 16,
        }
    }

    /// Decode a payload previously produced by [`WalRecord::encode`].
    /// Rejects trailing garbage: the frame length is authoritative.
    pub fn decode(payload: &[u8]) -> Result<WalRecord> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            TAG_CREATE => {
                let table = r.u16()?;
                let meta = TableMeta::decode_from(&mut r)?;
                WalRecord::CreateTable { table, meta }
            }
            TAG_FILL => {
                let table = r.u16()?;
                let col = r.u16()?;
                let start_row = r.u32()?;
                let n = r.u32()? as usize;
                let mut words = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    words.push(r.u64()?);
                }
                WalRecord::FillColumn {
                    table,
                    col,
                    start_row,
                    words,
                }
            }
            TAG_COMMIT => {
                let commit_ts = r.u64()?;
                let seq = r.u64()?;
                let n = r.u32()? as usize;
                let mut writes = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    writes.push(WalWrite {
                        table: r.u16()?,
                        col: r.u16()?,
                        row: r.u32()?,
                        word: r.u64()?,
                    });
                }
                WalRecord::Commit {
                    commit_ts,
                    seq,
                    writes,
                }
            }
            tag => return Err(DuraError::Corrupt(format!("unknown record tag {tag}"))),
        };
        if !r.finished() {
            return Err(DuraError::Corrupt(
                "record payload has trailing bytes".into(),
            ));
        }
        Ok(rec)
    }

    /// The commit timestamp, for [`WalRecord::Commit`] records.
    pub fn commit_ts(&self) -> Option<u64> {
        match self {
            WalRecord::Commit { commit_ts, .. } => Some(*commit_ts),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                table: 2,
                meta: TableMeta {
                    name: "lineitem".into(),
                    rows: 1234,
                    cols: vec![
                        ColumnMeta {
                            name: "l_quantity".into(),
                            ty: TY_DOUBLE,
                            dict_values: None,
                        },
                        ColumnMeta {
                            name: "l_returnflag".into(),
                            ty: TY_DICT,
                            dict_values: Some(vec!["A".into(), "N".into(), "R".into()]),
                        },
                    ],
                },
            },
            WalRecord::FillColumn {
                table: 2,
                col: 1,
                start_row: 512,
                words: (0..100).collect(),
            },
            WalRecord::Commit {
                commit_ts: 77,
                seq: 12,
                writes: vec![
                    WalWrite {
                        table: 2,
                        col: 0,
                        row: 9,
                        word: u64::MAX,
                    },
                    WalWrite {
                        table: 0,
                        col: 3,
                        row: 0,
                        word: 1,
                    },
                ],
            },
            WalRecord::Commit {
                commit_ts: 78,
                seq: 13,
                writes: vec![],
            },
        ]
    }

    #[test]
    fn round_trips() {
        for rec in samples() {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = samples()[2].encode();
        bytes.push(0);
        assert!(matches!(
            WalRecord::decode(&bytes),
            Err(DuraError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_payload_rejected() {
        let bytes = samples()[0].encode();
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                WalRecord::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            WalRecord::decode(&[200, 0, 0]),
            Err(DuraError::Corrupt(_))
        ));
    }
}
