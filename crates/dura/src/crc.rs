//! CRC-32 (IEEE 802.3 polynomial, the `zlib`/`gzip` variant) for WAL
//! record frames and checkpoint footers. Table-driven, byte-at-a-time —
//! plenty for log-append rates, and dependency-free.

/// The reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state. `Crc32::new()` … [`Crc32::update`] …
/// [`Crc32::finish`] equals [`crc32`] over the concatenated input.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feed `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 64];
        let base = crc32(&data);
        data[17] ^= 0x04;
        assert_ne!(crc32(&data), base);
    }
}
