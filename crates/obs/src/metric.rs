//! The three metric primitives: sharded [`Counter`], [`Gauge`], and
//! power-of-two-bucket [`Histogram`].
//!
//! All three are plain atomics — no locks anywhere on the update path —
//! and all are `const`-constructible so registration handles can live in
//! `static`s. Under the `obs-off` feature every update method compiles
//! to an empty inline body (the structs keep their layout so the
//! registry and renderers need no cfg).
//!
//! Counters are the only primitive hot enough to shard: a counter is
//! [`SHARDS`] cache-line-padded `AtomicU64`s, and each thread picks a
//! home shard from a round-robin thread ordinal, so concurrent `inc`s
//! from different threads usually touch different cache lines. Gauges
//! are a single `AtomicI64` (nothing in the engine bumps a gauge more
//! than a few thousand times a second). Histograms keep one `AtomicU64`
//! per log₂ bucket plus a running sum; the *count* is deliberately not
//! stored — it is the sum of the buckets, which makes
//! `histogram.count == matching counter` an exactly checkable invariant
//! at quiescence (no three-way record/count/sum race to paper over).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Counter shard fan-out. Eight padded lines (512 B per counter) is the
/// sweet spot for the thread counts the engine runs (≤ 16).
pub const SHARDS: usize = 8;

/// Number of log₂ histogram buckets. Bucket 0 holds exact zeros; bucket
/// `i ≥ 1` holds values with bit width `i`, i.e. `[2^(i-1), 2^i)`;
/// values of 2^62 ns (~146 years) and beyond clamp into the last bucket.
pub const BUCKETS: usize = 64;

#[repr(align(64))]
struct PadCell(AtomicU64);

/// A monotonically increasing event count.
pub struct Counter {
    shards: [PadCell; SHARDS],
}

impl Counter {
    pub const fn new() -> Self {
        Counter {
            shards: [const { PadCell(AtomicU64::new(0)) }; SHARDS],
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "obs-off"))]
        self.shards[home_shard()].0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    /// Sum of all shards. Relaxed loads: exact once writers quiesce,
    /// a live lower bound while they run.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// The calling thread's home shard: a round-robin ordinal assigned on
/// first use, reduced mod [`SHARDS`].
#[cfg(not(feature = "obs-off"))]
#[inline]
fn home_shard() -> usize {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HOME: usize = NEXT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
    }
    HOME.with(|h| *h)
}

/// A signed instantaneous value (pin counts, queue depths).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        #[cfg(not(feature = "obs-off"))]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    #[inline]
    pub fn set(&self, n: i64) {
        #[cfg(not(feature = "obs-off"))]
        self.value.store(n, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed value distribution (HdrHistogram-style, radix 2).
///
/// `record` is two relaxed `fetch_add`s — one bucket, one sum — with the
/// bucket index a `leading_zeros` away. Quantiles come out of the
/// snapshot by geometric interpolation inside the hit bucket, so a p99
/// read from 64 buckets is exact to within a factor-of-two bucket width
/// (plenty for "did the fsync stage eat the latency budget" questions).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: its bit width, clamped to the table.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        {
            self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// An owned copy of a [`Histogram`]'s state, with derived statistics.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`BUCKETS`] for the bounds).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations — by construction the sum of the buckets.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last,
    /// rendered as `+Inf`).
    pub fn upper_bound(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Quantile estimate (`q` in `[0, 1]`) by geometric interpolation
    /// within the hit bucket. Returns 0 for an empty distribution.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum as f64 + c as f64 >= target {
                let lo = if i == 0 {
                    0.0
                } else {
                    (1u64 << (i - 1)) as f64
                };
                let hi = if i == 0 { 1.0 } else { lo * 2.0 };
                let frac = (target - cum as f64) / c as f64;
                return lo + (hi - lo) * frac;
            }
            cum += c;
        }
        // All mass below target (concurrent mutation): report the top.
        (1u64 << (BUCKETS - 1)) as f64
    }

    /// Mean of the recorded values (exact: true sum over derived count).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count())
            .field("sum", &self.sum)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        static C: Counter = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        C.inc();
                    }
                });
            }
        });
        assert_eq!(C.get(), 40_000);
    }

    #[test]
    fn gauge_tracks_adds_and_sets() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_count_is_bucket_sum_and_quantiles_bracket() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum, 500_500);
        let p50 = s.quantile(0.5);
        // True median 500 lives in bucket [256, 512); interpolation must
        // land inside the bucket.
        assert!((256.0..512.0).contains(&p50), "p50 = {p50}");
        let p100 = s.quantile(1.0);
        assert!((512.0..=1024.0).contains(&p100), "p100 = {p100}");
        assert!((s.mean() - 500.5).abs() < 0.001);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0.0);
        assert_eq!(s.mean(), 0.0);
    }
}
