//! # anker-obs — the observability substrate for AnKerDB
//!
//! The paper this workspace reproduces is, at heart, a cost breakdown —
//! snapshot creation by page rewiring vs. `fork`, COW tax on the write
//! path, commit latency under concurrent OLAP — and cost breakdowns need
//! distributions, not means. This crate is the measurement layer every
//! hot path reports into:
//!
//! * a **process-wide metric registry** of lock-free sharded
//!   [`Counter`]s, [`Gauge`]s and log₂-bucket [`Histogram`]s, registered
//!   lazily through `static` handles the [`counter!`] / [`gauge!`] /
//!   [`histogram!`] macros place at each call site;
//! * a **span/stage tracer** ([`trace`]): per-thread bounded ring
//!   journals of named stages with nanosecond timestamps, cheap enough
//!   to stay on in release builds (one TSC read per boundary, relaxed
//!   stores only), merged on demand into a chrome://tracing JSON
//!   timeline by [`trace_json`];
//! * **exporters**: [`render_text`] (Prometheus text exposition) and
//!   [`render_json`], both also available on an engine-extended
//!   [`MetricsSnapshot`].
//!
//! Like `anker-lint`, the crate is hand-rolled with zero dependencies,
//! and it sits below every other workspace crate so `core`, `dura`,
//! `mvcc` and friends can all emit into one registry. The `obs-off`
//! feature compiles every hot-path operation to an empty inline body
//! while keeping the API intact — the overhead harness
//! (`repro_obs --overhead`) builds the engine both ways and records the
//! delta in `BENCH_obs_overhead.json`.
//!
//! ## Example
//!
//! ```
//! use anker_obs as obs;
//!
//! obs::counter!("doc_requests_total", "Requests served").inc();
//! obs::histogram!("doc_latency_ns", "Request latency").record(1_250);
//!
//! let tok = obs::span_begin(obs::stage!("doc_parse"));
//! // … work …
//! let tok = obs::span_switch(tok, obs::stage!("doc_execute"));
//! // … work …
//! let _end_ns = obs::span_end(tok);
//!
//! let snap = obs::snapshot();
//! assert!(snap.counter("doc_requests_total").is_some());
//! let text = obs::render_text();
//! assert!(text.contains("# TYPE doc_requests_total counter"));
//! ```

pub mod clock;
pub mod metric;
pub mod registry;
pub mod render;
pub mod trace;

pub use clock::{now_ns, timestamp};
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS, SHARDS};
pub use registry::{
    register_histogram, snapshot, CounterHandle, GaugeHandle, HistogramHandle, Metric, MetricValue,
    MetricsSnapshot,
};
pub use trace::{
    span_begin, span_begin_sampled, span_end, span_switch, trace_json, SpanGuard, SpanToken,
    StageMeta, STAGE_HELP,
};

/// Render the global registry in Prometheus text exposition format.
pub fn render_text() -> String {
    snapshot().render_text()
}

/// Render the global registry as one JSON object.
pub fn render_json() -> String {
    snapshot().render_json()
}

/// A `&'static Counter` registered once per name, cached per call site.
///
/// ```
/// anker_obs::counter!("lib_doc_example_total", "Example counter").add(2);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:literal, $help:literal) => {{
        static __OBS_HANDLE: $crate::registry::CounterHandle =
            $crate::registry::CounterHandle::new($name, $help);
        __OBS_HANDLE.get()
    }};
}

/// A `&'static Gauge` registered once per name, cached per call site.
#[macro_export]
macro_rules! gauge {
    ($name:literal, $help:literal) => {{
        static __OBS_HANDLE: $crate::registry::GaugeHandle =
            $crate::registry::GaugeHandle::new($name, $help);
        __OBS_HANDLE.get()
    }};
}

/// A `&'static Histogram` registered once per name, cached per call site.
#[macro_export]
macro_rules! histogram {
    ($name:literal, $help:literal) => {{
        static __OBS_HANDLE: $crate::registry::HistogramHandle =
            $crate::registry::HistogramHandle::new($name, $help);
        __OBS_HANDLE.get()
    }};
}

/// A `&'static StageMeta` for the tracer's span API. Every stage owns an
/// auto-registered `<name>_ns` histogram fed on each completed span.
#[macro_export]
macro_rules! stage {
    ($name:literal) => {{
        static __OBS_STAGE: $crate::trace::StageMeta =
            $crate::trace::StageMeta::new($name, concat!($name, "_ns"));
        &__OBS_STAGE
    }};
}

/// An RAII span over the rest of the enclosing scope (ends on drop,
/// including unwind). For multi-stage hot paths prefer the token API —
/// [`span_begin`] / [`span_switch`] / [`span_end`] — which shares clock
/// reads across stage boundaries and is checked by anker-lint.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::trace::SpanGuard::new($crate::stage!($name))
    };
}
