//! The process-wide metric registry and its point-in-time snapshot.
//!
//! Metrics register **lazily at first use** through `static` handles the
//! [`crate::counter!`]/[`crate::gauge!`]/[`crate::histogram!`] macros
//! drop at each call site: the first `get()` takes the registry mutex
//! once, leaks one allocation (metrics live for the process — that is
//! what makes the fast path a plain `&'static` atomic bump), caches the
//! reference in the handle's `OnceLock`, and every later `get()` is a
//! single atomic load. Two call sites naming the same metric share one
//! instance — names are the identity, first registration's help text
//! wins.
//!
//! [`snapshot`] copies the registry into a [`MetricsSnapshot`]: an
//! ordered, owned list of name/help/value triples that the engine can
//! extend with values absorbed from its legacy stats structs
//! (`AnkerDb::metrics` folds `DbStats`/`OsStats`/`WalStats`/
//! `KernelStats` in as namespaced counters) before rendering.

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Registered {
    name: &'static str,
    help: &'static str,
    slot: Slot,
}

struct Inner {
    by_name: HashMap<&'static str, usize>,
    metrics: Vec<Registered>,
}

fn registry() -> &'static Mutex<Inner> {
    static REG: OnceLock<Mutex<Inner>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(Inner {
            by_name: HashMap::new(),
            metrics: Vec::new(),
        })
    })
}

/// Register-or-lookup under the registry lock. `make` leaks the new
/// metric; `pick` projects the slot back out (panics on a kind clash,
/// which is a programming error worth failing loudly on).
fn intern<T>(
    name: &'static str,
    help: &'static str,
    make: impl FnOnce() -> Slot,
    pick: impl FnOnce(&Slot) -> Option<T>,
) -> T {
    let mut inner = registry().lock().expect("metric registry poisoned");
    let idx = match inner.by_name.get(name) {
        Some(&i) => i,
        None => {
            let i = inner.metrics.len();
            inner.metrics.push(Registered {
                name,
                help,
                slot: make(),
            });
            inner.by_name.insert(name, i);
            i
        }
    };
    pick(&inner.metrics[idx].slot)
        .unwrap_or_else(|| panic!("metric `{name}` registered twice with different kinds"))
}

/// Call-site handle for a [`Counter`]; see [`crate::counter!`].
pub struct CounterHandle {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl CounterHandle {
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        CounterHandle {
            name,
            help,
            cell: OnceLock::new(),
        }
    }

    /// The registered counter (registering on first call).
    #[inline]
    pub fn get(&self) -> &'static Counter {
        self.cell.get_or_init(|| {
            intern(
                self.name,
                self.help,
                || Slot::Counter(Box::leak(Box::new(Counter::new()))),
                |s| match s {
                    Slot::Counter(c) => Some(*c),
                    _ => None,
                },
            )
        })
    }
}

impl std::fmt::Debug for CounterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CounterHandle").field(&self.name).finish()
    }
}

/// Call-site handle for a [`Gauge`]; see [`crate::gauge!`].
pub struct GaugeHandle {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<&'static Gauge>,
}

impl GaugeHandle {
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        GaugeHandle {
            name,
            help,
            cell: OnceLock::new(),
        }
    }

    /// The registered gauge (registering on first call).
    #[inline]
    pub fn get(&self) -> &'static Gauge {
        self.cell.get_or_init(|| {
            intern(
                self.name,
                self.help,
                || Slot::Gauge(Box::leak(Box::new(Gauge::new()))),
                |s| match s {
                    Slot::Gauge(g) => Some(*g),
                    _ => None,
                },
            )
        })
    }
}

impl std::fmt::Debug for GaugeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("GaugeHandle").field(&self.name).finish()
    }
}

/// Call-site handle for a [`Histogram`]; see [`crate::histogram!`].
pub struct HistogramHandle {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl HistogramHandle {
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        HistogramHandle {
            name,
            help,
            cell: OnceLock::new(),
        }
    }

    /// The registered histogram (registering on first call).
    #[inline]
    pub fn get(&self) -> &'static Histogram {
        self.cell
            .get_or_init(|| register_histogram(self.name, self.help))
    }
}

impl std::fmt::Debug for HistogramHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("HistogramHandle").field(&self.name).finish()
    }
}

/// Non-macro registration entry point — the span tracer auto-registers
/// one `<stage>_ns` histogram per stage through this.
pub fn register_histogram(name: &'static str, help: &'static str) -> &'static Histogram {
    intern(
        name,
        help,
        || Slot::Histogram(Box::leak(Box::new(Histogram::new()))),
        |s| match s {
            Slot::Histogram(h) => Some(*h),
            _ => None,
        },
    )
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(Box<HistogramSnapshot>),
}

/// One metric inside a [`MetricsSnapshot`].
#[derive(Clone, Debug)]
pub struct Metric {
    pub name: String,
    pub help: String,
    pub value: MetricValue,
}

/// An owned, name-ordered copy of every registered metric, plus any
/// values the caller folded in. Render with
/// [`render_text`](Self::render_text) / [`render_json`](Self::render_json).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    /// The metrics, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = &Metric> {
        self.metrics.iter()
    }

    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    fn upsert(&mut self, name: &str, help: &str, value: MetricValue) {
        match self.metrics.binary_search_by(|m| m.name.as_str().cmp(name)) {
            Ok(i) => self.metrics[i].value = value,
            Err(i) => self.metrics.insert(
                i,
                Metric {
                    name: name.to_string(),
                    help: help.to_string(),
                    value,
                },
            ),
        }
    }

    /// Insert-or-replace a counter value (used to absorb legacy stats
    /// structs into the unified surface).
    pub fn set_counter(&mut self, name: &str, help: &str, v: u64) {
        self.upsert(name, help, MetricValue::Counter(v));
    }

    /// Insert-or-replace a gauge value.
    pub fn set_gauge(&mut self, name: &str, help: &str, v: i64) {
        self.upsert(name, help, MetricValue::Gauge(v));
    }

    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.find(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.find(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.find(name)? {
            MetricValue::Histogram(h) => Some(h.as_ref()),
            _ => None,
        }
    }

    fn find(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|m| m.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].value)
    }
}

/// Snapshot the global registry: every metric registered so far, sorted
/// by name, with point-in-time values.
pub fn snapshot() -> MetricsSnapshot {
    let inner = registry().lock().expect("metric registry poisoned");
    let mut metrics: Vec<Metric> = inner
        .metrics
        .iter()
        .map(|r| Metric {
            name: r.name.to_string(),
            help: r.help.to_string(),
            value: match &r.slot {
                Slot::Counter(c) => MetricValue::Counter(c.get()),
                Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                Slot::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
            },
        })
        .collect();
    drop(inner);
    metrics.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot { metrics }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_instance_across_call_sites() {
        let a = crate::counter!("obs_test_dedup_total", "test counter");
        let b = crate::counter!("obs_test_dedup_total", "test counter");
        assert!(std::ptr::eq(a, b));
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn snapshot_sees_registered_values() {
        crate::counter!("obs_test_snap_total", "test counter").add(3);
        crate::gauge!("obs_test_snap_gauge", "test gauge").set(-2);
        crate::histogram!("obs_test_snap_ns", "test histogram").record(100);
        let s = snapshot();
        assert!(s.counter("obs_test_snap_total").unwrap() >= 3);
        assert_eq!(s.gauge("obs_test_snap_gauge"), Some(-2));
        assert!(s.histogram("obs_test_snap_ns").unwrap().count() >= 1);
        // Sorted by name.
        let names: Vec<&str> = s.iter().map(|m| m.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn upsert_replaces_and_inserts_in_order() {
        let mut s = MetricsSnapshot::default();
        s.set_counter("b_total", "b", 1);
        s.set_counter("a_total", "a", 2);
        s.set_counter("b_total", "b", 9);
        assert_eq!(s.counter("a_total"), Some(2));
        assert_eq!(s.counter("b_total"), Some(9));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().next().unwrap().name, "a_total");
    }
}
