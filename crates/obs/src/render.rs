//! Exporters: Prometheus text exposition and a JSON document, both
//! rendered from a [`MetricsSnapshot`] so the engine can fold absorbed
//! legacy stats in before serialisation.

use crate::metric::{HistogramSnapshot, BUCKETS};
use crate::registry::{MetricValue, MetricsSnapshot};

impl MetricsSnapshot {
    /// Prometheus text exposition format (version 0.0.4): `# HELP` /
    /// `# TYPE` headers, `_bucket{le="…"}` / `_sum` / `_count` series
    /// for histograms. Empty buckets are elided (log₂ buckets are
    /// cumulative-rendered, so elision loses nothing).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for m in self.iter() {
            let kind = match &m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            out.push_str(&format!("# TYPE {} {}\n", m.name, kind));
            match &m.value {
                MetricValue::Counter(v) => out.push_str(&format!("{} {v}\n", m.name)),
                MetricValue::Gauge(v) => out.push_str(&format!("{} {v}\n", m.name)),
                MetricValue::Histogram(h) => render_text_histogram(&mut out, &m.name, h),
            }
        }
        out
    }

    /// One JSON object: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum, mean, p50, p95, p99,
    /// buckets: [[le, cumulative_count], …]}}}`.
    pub fn render_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for m in self.iter() {
            let name = json_escape(&m.name);
            match &m.value {
                MetricValue::Counter(v) => counters.push(format!("\"{name}\":{v}")),
                MetricValue::Gauge(v) => gauges.push(format!("\"{name}\":{v}")),
                MetricValue::Histogram(h) => {
                    let mut buckets = Vec::new();
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        buckets.push(format!("[{},{cum}]", le_label(i)));
                    }
                    hists.push(format!(
                        "\"{name}\":{{\"count\":{},\"sum\":{},\"mean\":{:.1},\
                         \"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1},\"buckets\":[{}]}}",
                        h.count(),
                        h.sum,
                        h.mean(),
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                        buckets.join(",")
                    ));
                }
            }
        }
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

fn render_text_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let mut cum = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        if i < BUCKETS - 1 {
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cum}\n",
                HistogramSnapshot::upper_bound(i)
            ));
        }
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
    out.push_str(&format!("{name}_sum {}\n", h.sum));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

/// `le` label for JSON bucket pairs: the numeric bound, or `"+Inf"`.
fn le_label(i: usize) -> String {
    if i >= BUCKETS - 1 {
        "\"+Inf\"".to_string()
    } else {
        HistogramSnapshot::upper_bound(i).to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// metric names are identifiers, but help texts and thread names are
/// free-form.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(not(feature = "obs-off"))]
    use crate::metric::Histogram;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.set_counter("x_total", "an x", 7);
        s.set_gauge("y_now", "a y", -3);
        s
    }

    #[test]
    fn text_format_counters_and_gauges() {
        let text = sample().render_text();
        assert!(text.contains("# HELP x_total an x\n"));
        assert!(text.contains("# TYPE x_total counter\n"));
        assert!(text.contains("x_total 7\n"));
        assert!(text.contains("# TYPE y_now gauge\n"));
        assert!(text.contains("y_now -3\n"));
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn text_format_histogram_is_cumulative() {
        let h = Histogram::new();
        h.record(1); // bucket 1, le 1
        h.record(3); // bucket 2, le 3
        h.record(3);
        let mut out = String::new();
        render_text_histogram(&mut out, "z_ns", &h.snapshot());
        assert!(out.contains("z_ns_bucket{le=\"1\"} 1\n"));
        assert!(out.contains("z_ns_bucket{le=\"3\"} 3\n"));
        assert!(out.contains("z_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(out.contains("z_ns_sum 7\n"));
        assert!(out.contains("z_ns_count 3\n"));
    }

    #[test]
    fn json_format_shape() {
        let json = sample().render_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"x_total\":7"));
        assert!(json.contains("\"y_now\":-3"));
        assert!(json.ends_with("\"histograms\":{}}"));
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
