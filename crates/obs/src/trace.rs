//! The span/stage tracer: a per-thread ring-buffer event journal with
//! named stages and nanosecond timestamps, cheap enough to stay on in
//! release builds.
//!
//! ## Cost model
//!
//! A completed span costs one clock read at each end (see
//! [`crate::clock`]) plus one histogram record and four relaxed stores
//! into the calling thread's ring — no locks, no allocation after the
//! thread's first span. [`span_switch`] closes one stage and opens the
//! next **sharing a single clock read**, which is what keeps a
//! five-stage commit pipeline at six clock reads total instead of ten.
//!
//! ## Journal shape
//!
//! Each traced thread owns a fixed ring of [`RING_DEFAULT`] slots
//! (override with `ANKER_OBS_RING`, rounded up to a power of two): the
//! journal keeps the most recent events and overwrites the oldest, so
//! memory is strictly bounded at `threads × capacity × 24 B` and an
//! always-on tracer can never grow without bound. [`trace_json`] merges
//! every thread's ring into one chrome://tracing "trace event" JSON
//! document (load it at `chrome://tracing` or in Perfetto).
//!
//! Slot reads during a dump are validated with a per-slot sequence tag
//! (written last, with `Release`): a slot overwritten since the dump
//! started fails the tag check and is skipped. A writer racing the dump
//! in the narrow window after its field stores but before its tag store
//! can still yield one torn event; dumps are diagnostic output, so the
//! trade — zero fences on the hot path — is taken deliberately, and
//! implausible events (duration over an hour) are dropped at dump time.
//!
//! ## API discipline
//!
//! The manual token API ([`span_begin`] → [`span_switch`]* →
//! [`span_end`]) is for multi-stage hot paths; the [`crate::span!`]
//! guard is for coarse single-stage scopes. Tokens are linear: the
//! `span-leak` pass in anker-lint checks that every token reaches
//! `span_end`/`span_switch` on every CFG exit path, so a leaked span
//! cannot silently skew stage timings.

#[cfg(not(feature = "obs-off"))]
use crate::clock;
#[cfg(not(feature = "obs-off"))]
use crate::metric::Histogram;
#[cfg(not(feature = "obs-off"))]
use crate::registry::register_histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default per-thread ring capacity (slots, each 24 bytes).
pub const RING_DEFAULT: usize = 1024;

/// Shared help text of every span-derived `<stage>_ns` histogram. Public
/// so metric manifests (see `anker-core`'s `obs_register_all`) can
/// pre-register stage histograms with byte-identical metadata.
pub const STAGE_HELP: &str =
    "Nanoseconds per completed span of this stage (auto-registered by the span tracer)";
/// Durations are packed into 48 bits next to the stage id; 2^48 ns is
/// ~78 hours, far beyond any plausible span.
const DUR_MASK: u64 = (1 << 48) - 1;
/// Dump-time sanity bound for a single span: one hour.
const DUR_SANE_NS: u64 = 3_600_000_000_000;

/// A named stage, declared per call site by [`crate::stage!`]. Interned
/// by name on first use: every stage also owns a `<name>_ns` histogram
/// in the registry, fed automatically on each completed span.
pub struct StageMeta {
    name: &'static str,
    #[cfg(not(feature = "obs-off"))]
    hist_name: &'static str,
    #[cfg(not(feature = "obs-off"))]
    cell: OnceLock<StageReg>,
}

#[cfg(not(feature = "obs-off"))]
struct StageReg {
    id: u16,
    hist: &'static Histogram,
}

impl StageMeta {
    #[cfg(not(feature = "obs-off"))]
    pub const fn new(name: &'static str, hist_name: &'static str) -> Self {
        StageMeta {
            name,
            hist_name,
            cell: OnceLock::new(),
        }
    }

    #[cfg(feature = "obs-off")]
    pub const fn new(name: &'static str, _hist_name: &'static str) -> Self {
        StageMeta { name }
    }

    /// The stage name as it appears in trace dumps.
    pub fn name(&self) -> &'static str {
        self.name
    }

    #[cfg(not(feature = "obs-off"))]
    fn resolve(&self) -> &StageReg {
        self.cell.get_or_init(|| StageReg {
            id: intern_stage(self.name),
            hist: register_histogram(self.hist_name, STAGE_HELP),
        })
    }
}

impl std::fmt::Debug for StageMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("StageMeta").field(&self.name).finish()
    }
}

fn stage_names() -> &'static Mutex<Vec<&'static str>> {
    static STAGES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    STAGES.get_or_init(|| Mutex::new(Vec::new()))
}

#[cfg(not(feature = "obs-off"))]
fn intern_stage(name: &'static str) -> u16 {
    let mut names = stage_names().lock().expect("stage table poisoned");
    if let Some(i) = names.iter().position(|n| *n == name) {
        return i as u16;
    }
    assert!(names.len() < u16::MAX as usize, "stage table overflow");
    names.push(name);
    (names.len() - 1) as u16
}

/// One slot: a sequence tag for dump validation, the start timestamp,
/// and the packed stage id + duration.
struct Slot {
    seq: AtomicU64,
    start: AtomicU64,
    meta: AtomicU64,
}

/// One thread's event journal.
struct TraceBuf {
    /// Dense thread ordinal (the `tid` in trace dumps).
    ordinal: u64,
    name: String,
    /// Total events ever written; the ring index is `head & mask`.
    head: AtomicU64,
    mask: usize,
    slots: Box<[Slot]>,
}

impl TraceBuf {
    #[cfg(not(feature = "obs-off"))]
    fn write(&self, stage: u16, start: u64, dur: u64) {
        let seq = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(seq as usize) & self.mask];
        slot.start.store(start, Ordering::Relaxed);
        slot.meta
            .store((stage as u64) << 48 | dur.min(DUR_MASK), Ordering::Relaxed);
        // ORDERING: Release publishes the two field stores above before
        // the tag becomes visible; a dump's Acquire load of the tag
        // therefore sees this event's fields, not a predecessor's.
        slot.seq.store(seq + 1, Ordering::Release);
        // Single-writer ring: only this thread advances its own head.
        self.head.store(seq + 1, Ordering::Release);
    }
}

fn trace_bufs() -> &'static Mutex<Vec<Arc<TraceBuf>>> {
    static BUFS: OnceLock<Mutex<Vec<Arc<TraceBuf>>>> = OnceLock::new();
    BUFS.get_or_init(|| Mutex::new(Vec::new()))
}

#[cfg(not(feature = "obs-off"))]
fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("ANKER_OBS_RING")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.clamp(16, 1 << 20).next_power_of_two())
            .unwrap_or(RING_DEFAULT)
    })
}

#[cfg(not(feature = "obs-off"))]
fn register_thread() -> Arc<TraceBuf> {
    let cap = ring_capacity();
    let mut slots = Vec::with_capacity(cap);
    for _ in 0..cap {
        slots.push(Slot {
            seq: AtomicU64::new(0),
            start: AtomicU64::new(0),
            meta: AtomicU64::new(0),
        });
    }
    let mut bufs = trace_bufs().lock().expect("trace registry poisoned");
    let ordinal = bufs.len() as u64;
    let buf = Arc::new(TraceBuf {
        ordinal,
        name: std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{ordinal}")),
        head: AtomicU64::new(0),
        mask: cap - 1,
        slots: slots.into_boxed_slice(),
    });
    bufs.push(Arc::clone(&buf));
    buf
}

#[cfg(not(feature = "obs-off"))]
fn with_thread_buf(f: impl FnOnce(&TraceBuf)) {
    thread_local! {
        static BUF: Arc<TraceBuf> = register_thread();
    }
    // During thread teardown the TLS slot may already be gone; losing
    // the final events of a dying thread is fine.
    let _ = BUF.try_with(|b| f(b));
}

/// An open span: the stage being timed and its start timestamp. Linear —
/// must be passed to [`span_end`] or [`span_switch`] on every path out
/// of the enclosing function (enforced by anker-lint's `span-leak`
/// pass). Dropping a token loses the span silently.
#[must_use = "close the span with obs::span_end / obs::span_switch"]
pub struct SpanToken {
    #[cfg(not(feature = "obs-off"))]
    stage: &'static StageMeta,
    #[cfg(not(feature = "obs-off"))]
    start: u64,
}

impl SpanToken {
    /// Start timestamp of the open span (0 under `obs-off`,
    /// `u64::MAX` for a disabled [`span_begin_sampled`] token). Lets a
    /// pipeline derive its end-to-end duration from the first token and
    /// the end timestamp [`span_end`] returns, with no extra clock read —
    /// only meaningful for unsampled chains; sampled pipelines should
    /// take their own [`crate::timestamp`] instead.
    pub fn start_ns(&self) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        {
            self.start
        }
        #[cfg(feature = "obs-off")]
        {
            0
        }
    }
}

impl std::fmt::Debug for SpanToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SpanToken")
    }
}

/// Sentinel start value marking a token whose whole span chain is
/// disabled (not sampled this time): every later [`span_switch`] /
/// [`span_end`] on it is a branch and nothing else.
#[cfg(not(feature = "obs-off"))]
const DISABLED: u64 = u64::MAX;

/// Open a span for `stage` for **one in `2^shift`** calls on this thread
/// (the rest return a disabled token that flows through
/// [`span_switch`]/[`span_end`] as pure branches). For span chains on
/// paths hot enough that even one clock read per stage is real money —
/// the sub-microsecond commit pipeline — sampling keeps the stage
/// histograms statistically faithful at a fraction of the cost; pair it
/// with an unsampled counter + total-duration histogram when exact
/// counts matter. Low-frequency spans should use [`span_begin`].
#[inline]
pub fn span_begin_sampled(stage: &'static StageMeta, shift: u32) -> SpanToken {
    #[cfg(not(feature = "obs-off"))]
    {
        use std::cell::Cell;
        thread_local! {
            static TICK: Cell<u64> = const { Cell::new(0) };
        }
        // Thread teardown: treat as not sampled.
        let sampled = TICK
            .try_with(|t| {
                let v = t.get().wrapping_add(1);
                t.set(v);
                v & ((1u64 << shift) - 1) == 0
            })
            .unwrap_or(false);
        if sampled {
            span_begin(stage)
        } else {
            SpanToken {
                stage,
                start: DISABLED,
            }
        }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = (stage, shift);
        SpanToken {}
    }
}

/// Open a span for `stage` now.
#[inline]
pub fn span_begin(stage: &'static StageMeta) -> SpanToken {
    #[cfg(not(feature = "obs-off"))]
    {
        SpanToken {
            stage,
            start: clock::now_ns(),
        }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = stage;
        SpanToken {}
    }
}

/// Close a span: records the event in the journal and the stage's
/// `<name>_ns` histogram. Returns the end timestamp so callers can
/// derive whole-pipeline durations without another clock read.
#[inline]
pub fn span_end(tok: SpanToken) -> u64 {
    #[cfg(not(feature = "obs-off"))]
    {
        if tok.start == DISABLED {
            return 0;
        }
        let end = clock::now_ns();
        finish(tok, end);
        end
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = tok;
        0
    }
}

/// Close `tok` and open a span for `next` with one shared clock read, so
/// adjacent pipeline stages tile the timeline with no gap and no double
/// timestamping.
#[inline]
pub fn span_switch(tok: SpanToken, next: &'static StageMeta) -> SpanToken {
    #[cfg(not(feature = "obs-off"))]
    {
        if tok.start == DISABLED {
            return SpanToken {
                stage: next,
                start: DISABLED,
            };
        }
        let now = clock::now_ns();
        finish(tok, now);
        SpanToken {
            stage: next,
            start: now,
        }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = tok;
        let _ = next;
        SpanToken {}
    }
}

#[cfg(not(feature = "obs-off"))]
#[inline]
fn finish(tok: SpanToken, end: u64) {
    let dur = end.saturating_sub(tok.start);
    let reg = tok.stage.resolve();
    reg.hist.record(dur);
    with_thread_buf(|b| b.write(reg.id, tok.start, dur));
}

/// RAII wrapper over the token API for coarse scopes; see
/// [`crate::span!`]. Ends the span on drop (including unwind), or
/// explicitly via [`finish`](Self::finish) for the end timestamp.
#[derive(Debug)]
pub struct SpanGuard {
    tok: Option<SpanToken>,
}

impl SpanGuard {
    pub fn new(stage: &'static StageMeta) -> Self {
        SpanGuard {
            tok: Some(span_begin(stage)),
        }
    }

    /// End the span now, returning the end timestamp.
    pub fn finish(mut self) -> u64 {
        match self.tok.take() {
            Some(tok) => span_end(tok),
            None => 0,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(tok) = self.tok.take() {
            let _ = span_end(tok);
        }
    }
}

/// Merge every thread's ring into one chrome://tracing JSON document
/// ("trace event format": complete `X` events with microsecond `ts` /
/// `dur`, plus one thread-name metadata event per traced thread).
pub fn trace_json() -> String {
    let names: Vec<&'static str> = stage_names().lock().expect("stage table poisoned").clone();
    let bufs: Vec<Arc<TraceBuf>> = trace_bufs()
        .lock()
        .expect("trace registry poisoned")
        .clone();
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut events: Vec<(u64, u64, u64, u16)> = Vec::new(); // (start, dur, tid, stage)
    for buf in &bufs {
        // ORDERING: Acquire on head pairs with the writer's Release so
        // every slot the count covers has its tag store visible.
        let head = buf.head.load(Ordering::Acquire);
        let cap = buf.mask + 1;
        let window = head.min(cap as u64);
        let overwritten = head - window;
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\",\"overwritten\":{}}}}}",
            buf.ordinal,
            crate::render::json_escape(&buf.name),
            overwritten
        ));
        for seq in (head - window)..head {
            let slot = &buf.slots[(seq as usize) & buf.mask];
            // ORDERING: Acquire pairs with the writer's Release tag
            // store — a matching tag means the field stores below it
            // happened-before our loads.
            if slot.seq.load(Ordering::Acquire) != seq + 1 {
                continue; // overwritten (or mid-write) since `head` was read
            }
            let start = slot.start.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq + 1 {
                continue;
            }
            let dur = meta & DUR_MASK;
            if dur > DUR_SANE_NS {
                continue;
            }
            events.push((start, dur, buf.ordinal, (meta >> 48) as u16));
        }
    }
    events.sort_unstable();
    for (start, dur, tid, stage) in events {
        let name = names.get(stage as usize).copied().unwrap_or("?");
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{name}\",\
             \"ts\":{}.{:03},\"dur\":{}.{:03}}}",
            start / 1000,
            start % 1000,
            dur / 1000,
            dur % 1000
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn spans_feed_histogram_and_journal() {
        let stage = crate::stage!("obs_test_stage_a");
        let tok = span_begin(stage);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let end = span_end(tok);
        assert!(end > 0);
        let snap = crate::snapshot();
        let h = snap
            .histogram("obs_test_stage_a_ns")
            .expect("auto-registered");
        assert!(h.count() >= 1);
        assert!(h.sum >= 500_000, "1 ms sleep recorded {} ns", h.sum);
        let json = trace_json();
        assert!(json.contains("\"obs_test_stage_a\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn switch_tiles_adjacent_stages() {
        let a = crate::stage!("obs_test_stage_b1");
        let b = crate::stage!("obs_test_stage_b2");
        let tok = span_begin(a);
        let tok = span_switch(tok, b);
        let _ = span_end(tok);
        let snap = crate::snapshot();
        assert_eq!(snap.histogram("obs_test_stage_b1_ns").unwrap().count(), 1);
        assert_eq!(snap.histogram("obs_test_stage_b2_ns").unwrap().count(), 1);
    }

    #[test]
    fn guard_ends_on_drop_and_on_unwind() {
        {
            let _g = crate::span!("obs_test_stage_c");
        }
        let res = std::panic::catch_unwind(|| {
            let _g = crate::span!("obs_test_stage_c");
            panic!("boom");
        });
        assert!(res.is_err());
        let snap = crate::snapshot();
        assert_eq!(snap.histogram("obs_test_stage_c_ns").unwrap().count(), 2);
    }

    #[test]
    fn sampled_spans_record_exactly_one_in_two_pow_shift() {
        // Run on a dedicated thread so this test owns the TLS tick
        // counter from zero and the arithmetic below is exact.
        std::thread::spawn(|| {
            let a = crate::stage!("obs_test_stage_e1");
            let b = crate::stage!("obs_test_stage_e2");
            for _ in 0..64 {
                let tok = span_begin_sampled(a, 4);
                // Disabled tokens must flow through a switch untouched.
                let tok = span_switch(tok, b);
                let _ = span_end(tok);
            }
        })
        .join()
        .unwrap();
        let snap = crate::snapshot();
        // Tick 0 samples (0 & mask == 0 after wrapping increment lands
        // on 16, 32, 48, 64): 64 calls at shift 4 → exactly 4 samples,
        // propagated through the whole chain.
        assert_eq!(snap.histogram("obs_test_stage_e1_ns").unwrap().count(), 4);
        assert_eq!(snap.histogram("obs_test_stage_e2_ns").unwrap().count(), 4);
    }

    #[test]
    fn disabled_token_span_end_returns_zero() {
        std::thread::spawn(|| {
            let a = crate::stage!("obs_test_stage_f");
            // Tick 1 of 2^30 — never sampled on this fresh thread.
            let tok = span_begin_sampled(a, 30);
            assert_eq!(span_end(tok), 0);
        })
        .join()
        .unwrap();
        let snap = crate::snapshot();
        // A never-sampled stage never resolves its histogram at all.
        assert_eq!(
            snap.histogram("obs_test_stage_f_ns")
                .map_or(0, |h| h.count()),
            0
        );
    }

    #[test]
    fn ring_overwrites_but_never_grows() {
        let stage = crate::stage!("obs_test_stage_d");
        for _ in 0..3000 {
            let tok = span_begin(stage);
            let _ = span_end(tok);
        }
        // The journal stays bounded; the dump stays parseable and the
        // histogram saw every event even though the ring wrapped.
        let snap = crate::snapshot();
        assert!(snap.histogram("obs_test_stage_d_ns").unwrap().count() >= 3000);
        let json = trace_json();
        assert!(json.ends_with("]}"));
    }
}
