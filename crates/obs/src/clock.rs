//! The monotonic nanosecond clock behind every span timestamp.
//!
//! On x86_64 the clock is a single `RDTSC` read scaled by a ratio
//! calibrated once per process against [`std::time::Instant`] — about
//! 6–10 ns per read, versus the ~25 ns vDSO `clock_gettime` path, which
//! matters when a heterogeneous commit takes half a microsecond end to
//! end. Elsewhere (and whenever the TSC calibration looks unusable) the
//! clock falls back to `Instant` deltas from a process-start anchor.
//!
//! Caveats, accepted deliberately: the TSC path assumes the invariant
//! TSC that every x86_64 part of the last decade provides (constant rate
//! across P-states, synchronized across cores by the kernel at boot). A
//! thread migrating between cores with a pathologically unsynced TSC
//! would produce a skewed *trace timestamp* — never a correctness
//! problem, because nothing in the engine consumes these timestamps.

use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since an arbitrary process-local origin.
///
/// Monotonic per thread; cross-thread comparisons are as good as the
/// platform TSC sync (see the module docs). The origin is the first call
/// on the TSC path and process start on the fallback path — only deltas
/// are meaningful.
#[inline]
pub fn now_ns() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        match tsc_scale() {
            Some(s) => {
                let ticks = rdtsc().saturating_sub(s.base);
                // One f64 multiply per read keeps the histogram buckets
                // nanosecond-denominated without a division.
                (ticks as f64 * s.ns_per_tick) as u64
            }
            None => fallback_ns(),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        fallback_ns()
    }
}

/// [`now_ns`], compiled to a constant `0` under `obs-off`.
///
/// For call sites that take explicit timestamps next to a span chain —
/// e.g. the commit pipeline's exact end-to-end histogram alongside its
/// sampled stage spans — and must cost nothing when observability is
/// compiled out.
#[inline]
pub fn timestamp() -> u64 {
    #[cfg(not(feature = "obs-off"))]
    {
        now_ns()
    }
    #[cfg(feature = "obs-off")]
    {
        0
    }
}

fn fallback_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    // 2^64 ns is ~584 years; the cast cannot truncate in practice.
    anchor.elapsed().as_nanos() as u64
}

#[cfg(target_arch = "x86_64")]
struct TscScale {
    base: u64,
    ns_per_tick: f64,
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn rdtsc() -> u64 {
    // SAFETY(provenance: _rdtsc, bounds: -): `_rdtsc` touches no memory —
    // it reads the CPU's time-stamp counter register, an unprivileged
    // baseline-ISA instruction available on every x86_64, which is why
    // the intrinsic carries no target-feature gate.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Calibrate ticks→ns once per process: spin ~200 µs against `Instant`
/// and take the ratio. Returns `None` when the counter did not advance
/// (emulators, pathological hosts), selecting the fallback clock.
#[cfg(target_arch = "x86_64")]
fn tsc_scale() -> Option<&'static TscScale> {
    static SCALE: OnceLock<Option<TscScale>> = OnceLock::new();
    SCALE
        .get_or_init(|| {
            let t0 = Instant::now();
            let c0 = rdtsc();
            let elapsed = loop {
                let e = t0.elapsed();
                if e.as_micros() >= 200 {
                    break e;
                }
                std::hint::spin_loop();
            };
            let c1 = rdtsc();
            let ticks = c1.saturating_sub(c0);
            if ticks == 0 {
                return None;
            }
            Some(TscScale {
                base: c0,
                ns_per_tick: elapsed.as_nanos() as f64 / ticks as f64,
            })
        })
        .as_ref()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_roughly_tracks_wall_time() {
        let a = now_ns();
        let wall = Instant::now();
        while wall.elapsed().as_millis() < 5 {
            std::hint::spin_loop();
        }
        let b = now_ns();
        let dt = b.saturating_sub(a);
        // 5 ms spin must register between 2 ms and 500 ms on any host.
        assert!(dt > 2_000_000, "clock barely advanced: {dt} ns");
        assert!(dt < 500_000_000, "clock ran wild: {dt} ns");
    }

    #[test]
    fn monotonic_within_a_thread() {
        let mut prev = now_ns();
        for _ in 0..10_000 {
            let t = now_ns();
            assert!(t >= prev);
            prev = t;
        }
    }
}
