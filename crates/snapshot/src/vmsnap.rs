//! `vm_snapshot`-based snapshotting — the paper's contribution (§4).
//!
//! One system call per column duplicates the column's VMAs and PTEs inside
//! the same process; physical pages are shared copy-on-write and the kernel
//! handles all write separation. Optionally recycles the virtual memory
//! area of a dropped snapshot as the destination of the next one (§4.1.3).

use crate::{word_addr, SnapshotId, Snapshotter};
use anker_util::FxHashMap;
use anker_vmem::{Kernel, MapBacking, Prot, Result, Share, Space, VmError};

/// Snapshotting via the custom `vm_snapshot` system call.
#[derive(Debug)]
pub struct VmSnapshotter {
    kernel: Kernel,
    space: Space,
    cols: Vec<u64>,
    pages_per_col: u64,
    /// Reuse the areas of dropped snapshots as destinations (§4.1.3).
    recycle: bool,
    /// Dropped-but-not-unmapped column areas available for recycling.
    spare_areas: Vec<u64>,
    snapshots: FxHashMap<usize, Vec<u64>>,
    next_id: usize,
}

impl VmSnapshotter {
    /// Build a table of `n_cols` columns, `pages_per_col` pages each.
    pub fn new(n_cols: usize, pages_per_col: u64) -> Result<VmSnapshotter> {
        Self::with_kernel(Kernel::default(), n_cols, pages_per_col, false)
    }

    /// Like [`VmSnapshotter::new`] but reusing dropped snapshot areas as
    /// `vm_snapshot` destinations.
    pub fn new_recycling(n_cols: usize, pages_per_col: u64) -> Result<VmSnapshotter> {
        Self::with_kernel(Kernel::default(), n_cols, pages_per_col, true)
    }

    /// Build the table on an existing kernel.
    pub fn with_kernel(
        kernel: Kernel,
        n_cols: usize,
        pages_per_col: u64,
        recycle: bool,
    ) -> Result<VmSnapshotter> {
        let space = kernel.create_space();
        let ps = space.page_size();
        let cols = (0..n_cols)
            .map(|_| {
                space.mmap(
                    pages_per_col * ps,
                    Prot::READ_WRITE,
                    Share::Private,
                    MapBacking::Anon,
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(VmSnapshotter {
            kernel,
            space,
            cols,
            pages_per_col,
            recycle,
            spare_areas: Vec::new(),
            snapshots: FxHashMap::default(),
            next_id: 0,
        })
    }

    /// The address space holding the base table and all snapshots.
    pub fn space(&self) -> &Space {
        &self.space
    }
}

impl Snapshotter for VmSnapshotter {
    fn name(&self) -> &'static str {
        "vm_snapshot"
    }

    fn n_cols(&self) -> usize {
        self.cols.len()
    }

    fn pages_per_col(&self) -> u64 {
        self.pages_per_col
    }

    fn snapshot_columns(&mut self, p: usize) -> Result<SnapshotId> {
        assert!(p <= self.cols.len());
        let col_bytes = self.pages_per_col * self.space.page_size();
        let mut snap_cols = Vec::with_capacity(p);
        for &src in &self.cols[..p] {
            let dst = if self.recycle {
                self.spare_areas.pop()
            } else {
                None
            };
            snap_cols.push(self.space.vm_snapshot(dst, src, col_bytes)?);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.snapshots.insert(id, snap_cols);
        Ok(SnapshotId(id))
    }

    fn drop_snapshot(&mut self, id: SnapshotId) -> Result<()> {
        let cols = self
            .snapshots
            .remove(&id.0)
            .ok_or(VmError::InvalidArgument("unknown snapshot id"))?;
        let bytes = self.pages_per_col * self.space.page_size();
        for addr in cols {
            if self.recycle {
                // Keep the area mapped; the next snapshot will overwrite it
                // via the dst_addr argument of vm_snapshot.
                self.spare_areas.push(addr);
            } else {
                self.space.munmap(addr, bytes)?;
            }
        }
        Ok(())
    }

    fn write_base(&mut self, col: usize, page: u64, word: u64, value: u64) -> Result<()> {
        // The kernel handles copy-on-write transparently.
        self.space.write_u64(
            word_addr(self.cols[col], self.space.page_size(), page, word),
            value,
        )
    }

    fn read_base(&self, col: usize, page: u64, word: u64) -> Result<u64> {
        self.space.read_u64(word_addr(
            self.cols[col],
            self.space.page_size(),
            page,
            word,
        ))
    }

    fn read_snapshot(&self, id: SnapshotId, col: usize, page: u64, word: u64) -> Result<u64> {
        let cols = &self.snapshots[&id.0];
        self.space
            .read_u64(word_addr(cols[col], self.space.page_size(), page, word))
    }

    fn base_vma_count(&self, col: usize) -> usize {
        self.space
            .vma_count_in(self.cols[col], self.pages_per_col * self.space.page_size())
    }

    fn kernel(&self) -> &Kernel {
        &self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Snapshotter;

    #[test]
    fn snapshot_is_lazy_and_cheap() {
        let mut s = VmSnapshotter::new(4, 64).unwrap();
        for c in 0..4 {
            for p in 0..64 {
                s.write_base(c, p, 0, 1).unwrap();
            }
        }
        let frames = s.kernel().frames_in_use();
        let t0 = s.kernel().virtual_ns();
        let id = s.snapshot_columns(4).unwrap();
        let cost = s.kernel().virtual_ns() - t0;
        assert_eq!(s.kernel().frames_in_use(), frames, "no physical copies");
        // 4 columns x 64 PTEs at ~45ns each plus 4 syscalls: well under 1ms.
        assert!(cost < 1_000_000, "vm_snapshot too expensive: {cost} ns");
        s.write_base(0, 0, 0, 2).unwrap();
        assert_eq!(s.read_snapshot(id, 0, 0, 0).unwrap(), 1);
    }

    #[test]
    fn recycling_reuses_areas() {
        let mut s = VmSnapshotter::new_recycling(1, 8).unwrap();
        s.write_base(0, 0, 0, 1).unwrap();
        let a = s.snapshot_columns(1).unwrap();
        let addr_a = s.snapshots[&a.0][0];
        s.drop_snapshot(a).unwrap();
        s.write_base(0, 0, 0, 2).unwrap();
        let b = s.snapshot_columns(1).unwrap();
        let addr_b = s.snapshots[&b.0][0];
        assert_eq!(addr_a, addr_b, "area should be recycled");
        assert_eq!(s.read_snapshot(b, 0, 0, 0).unwrap(), 2);
    }

    #[test]
    fn cost_scales_with_ptes_not_data() {
        // Only touched pages have PTEs; snapshotting an untouched column is
        // nearly free regardless of its size.
        let mut s = VmSnapshotter::new(2, 512).unwrap();
        // Touch all of column 0, nothing of column 1.
        for p in 0..512 {
            s.write_base(0, p, 0, 1).unwrap();
        }
        let t0 = s.kernel().virtual_ns();
        s.space.vm_snapshot(None, s.cols[0], 512 * 4096).unwrap();
        let touched = s.kernel().virtual_ns() - t0;
        let t0 = s.kernel().virtual_ns();
        s.space.vm_snapshot(None, s.cols[1], 512 * 4096).unwrap();
        let untouched = s.kernel().virtual_ns() - t0;
        assert!(
            touched > untouched * 5,
            "PTE copies should dominate: touched={touched} untouched={untouched}"
        );
    }

    #[test]
    fn many_generations_stay_consistent() {
        let mut s = VmSnapshotter::new(1, 4).unwrap();
        let mut ids = Vec::new();
        for gen in 0..10u64 {
            s.write_base(0, gen % 4, 0, gen).unwrap();
            ids.push((gen, s.snapshot_columns(1).unwrap()));
        }
        // Each generation's snapshot holds the value written just before it.
        for (gen, id) in &ids {
            assert_eq!(s.read_snapshot(*id, 0, *gen % 4, 0).unwrap(), *gen);
        }
    }
}
