//! Physical (eager deep-copy) snapshotting — paper §3.1, §3.3.2(a).
//!
//! "To create a snapshot of p columns of table T, we allocate a fresh
//! virtual memory area S of size p·l pages. Then, we copy the content of
//! p columns of T into S using memcpy."

use crate::{word_addr, SnapshotId, Snapshotter};
use anker_util::FxHashMap;
use anker_vmem::{Access, Kernel, MapBacking, Prot, Result, Share, Space};

/// Eager physical snapshotting over anonymous private columns.
#[derive(Debug)]
pub struct PhysicalSnapshotter {
    kernel: Kernel,
    space: Space,
    cols: Vec<u64>,
    pages_per_col: u64,
    snapshots: FxHashMap<usize, Vec<u64>>,
    next_id: usize,
}

impl PhysicalSnapshotter {
    /// Build a table of `n_cols` columns, `pages_per_col` pages each.
    pub fn new(n_cols: usize, pages_per_col: u64) -> Result<PhysicalSnapshotter> {
        Self::with_kernel(Kernel::default(), n_cols, pages_per_col)
    }

    /// Build the table on an existing kernel.
    pub fn with_kernel(
        kernel: Kernel,
        n_cols: usize,
        pages_per_col: u64,
    ) -> Result<PhysicalSnapshotter> {
        let space = kernel.create_space();
        let ps = space.page_size();
        let cols = (0..n_cols)
            .map(|_| {
                space.mmap(
                    pages_per_col * ps,
                    Prot::READ_WRITE,
                    Share::Private,
                    MapBacking::Anon,
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(PhysicalSnapshotter {
            kernel,
            space,
            cols,
            pages_per_col,
            snapshots: FxHashMap::default(),
            next_id: 0,
        })
    }

    /// The address space holding the base table and all snapshots.
    pub fn space(&self) -> &Space {
        &self.space
    }
}

impl Snapshotter for PhysicalSnapshotter {
    fn name(&self) -> &'static str {
        "physical"
    }

    fn n_cols(&self) -> usize {
        self.cols.len()
    }

    fn pages_per_col(&self) -> u64 {
        self.pages_per_col
    }

    fn snapshot_columns(&mut self, p: usize) -> Result<SnapshotId> {
        assert!(p <= self.cols.len());
        let ps = self.space.page_size();
        let col_bytes = self.pages_per_col * ps;
        let mut snap_cols = Vec::with_capacity(p);
        for &src in &self.cols[..p] {
            let dst = self.space.mmap(
                col_bytes,
                Prot::READ_WRITE,
                Share::Private,
                MapBacking::Anon,
            )?;
            // Page-wise memcpy through the address space: the destination's
            // populate faults and the copies are the physical cost.
            for page in 0..self.pages_per_col {
                let s = self.space.resolve(src + page * ps, Access::Read)?;
                let d = self.space.resolve(dst + page * ps, Access::Write)?;
                for w in 0..s.words() {
                    d.store(w, s.load(w));
                }
                self.kernel.charge_memcpy_page();
            }
            snap_cols.push(dst);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.snapshots.insert(id, snap_cols);
        Ok(SnapshotId(id))
    }

    fn drop_snapshot(&mut self, id: SnapshotId) -> Result<()> {
        let cols = self
            .snapshots
            .remove(&id.0)
            .ok_or(anker_vmem::VmError::InvalidArgument("unknown snapshot id"))?;
        let bytes = self.pages_per_col * self.space.page_size();
        for addr in cols {
            self.space.munmap(addr, bytes)?;
        }
        Ok(())
    }

    fn write_base(&mut self, col: usize, page: u64, word: u64, value: u64) -> Result<()> {
        // Physical snapshots are fully separated: plain in-place write.
        self.space.write_u64(
            word_addr(self.cols[col], self.space.page_size(), page, word),
            value,
        )
    }

    fn read_base(&self, col: usize, page: u64, word: u64) -> Result<u64> {
        self.space.read_u64(word_addr(
            self.cols[col],
            self.space.page_size(),
            page,
            word,
        ))
    }

    fn read_snapshot(&self, id: SnapshotId, col: usize, page: u64, word: u64) -> Result<u64> {
        let cols = &self.snapshots[&id.0];
        self.space
            .read_u64(word_addr(cols[col], self.space.page_size(), page, word))
    }

    fn base_vma_count(&self, col: usize) -> usize {
        self.space
            .vma_count_in(self.cols[col], self.pages_per_col * self.space.page_size())
    }

    fn kernel(&self) -> &Kernel {
        &self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Snapshotter;

    #[test]
    fn snapshot_is_deep_copy() {
        let mut s = PhysicalSnapshotter::new(3, 4).unwrap();
        // Populate the first two columns fully so the copy loop's source
        // reads do not allocate fresh zero pages mid-measurement.
        for c in 0..2 {
            for p in 0..4 {
                s.write_base(c, p, 0, 1).unwrap();
            }
        }
        s.write_base(1, 2, 3, 99).unwrap();
        let frames_before = s.kernel().frames_in_use();
        let id = s.snapshot_columns(2).unwrap();
        // Eager: both snapshotted columns fully materialised.
        assert_eq!(s.kernel().frames_in_use(), frames_before + 2 * 4);
        assert_eq!(s.read_snapshot(id, 1, 2, 3).unwrap(), 99);
        // No COW relationship: base writes cost no extra frames.
        let f = s.kernel().frames_in_use();
        s.write_base(1, 2, 3, 100).unwrap();
        assert_eq!(s.kernel().frames_in_use(), f);
        assert_eq!(s.read_snapshot(id, 1, 2, 3).unwrap(), 99);
    }

    #[test]
    fn cost_scales_with_columns() {
        let mut s = PhysicalSnapshotter::new(8, 16).unwrap();
        let t0 = s.kernel().virtual_ns();
        s.snapshot_columns(1).unwrap();
        let c1 = s.kernel().virtual_ns() - t0;
        let t0 = s.kernel().virtual_ns();
        s.snapshot_columns(8).unwrap();
        let c8 = s.kernel().virtual_ns() - t0;
        let ratio = c8 as f64 / c1 as f64;
        assert!(
            (6.0..10.0).contains(&ratio),
            "expected ~8x scaling, got {ratio:.2}x"
        );
    }

    #[test]
    fn drop_releases_frames() {
        let mut s = PhysicalSnapshotter::new(2, 8).unwrap();
        for c in 0..2 {
            for p in 0..8 {
                s.write_base(c, p, 0, 1).unwrap();
            }
        }
        let base = s.kernel().frames_in_use();
        let id = s.snapshot_columns(2).unwrap();
        assert_eq!(s.kernel().frames_in_use(), base + 16);
        s.drop_snapshot(id).unwrap();
        assert_eq!(s.kernel().frames_in_use(), base);
    }
}
