//! Reusable drivers for the paper's snapshotting micro-benchmarks
//! (Table 1 and Figure 5). The criterion benches and the `repro_*`
//! binaries in `anker-bench` both call into these, and the unit tests run
//! them at small scale to validate the experimental shapes.

use crate::{
    ForkSnapshotter, PhysicalSnapshotter, RewiredSnapshotter, SnapshotId, Snapshotter,
    VmSnapshotter,
};
use anker_vmem::Result;
use std::time::Instant;

/// Configuration of the Table 1 experiment (§3.3.2).
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Number of columns in the table (paper: 50).
    pub n_cols: usize,
    /// Pages per column (paper: 51 200 = 200 MB of 4 KiB pages).
    pub pages_per_col: u64,
    /// Numbers of columns to snapshot (paper: 1, 25, 50).
    pub col_counts: Vec<usize>,
    /// Modified-page counts for the rewiring rows (paper: 0, 500, 5 000,
    /// 50 000).
    pub modified_pages: Vec<u64>,
}

impl Default for Table1Config {
    fn default() -> Self {
        // Scaled-down defaults (16 MB columns): same shape, laptop runtime.
        Table1Config {
            n_cols: 50,
            pages_per_col: 4096,
            col_counts: vec![1, 25, 50],
            modified_pages: vec![0, 40, 400, 4000],
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Technique name.
    pub method: &'static str,
    /// Pages modified per column before the snapshot (rewiring rows only).
    pub modified_per_col: Option<u64>,
    /// VMAs per column at snapshot time.
    pub vmas_per_col: usize,
    /// Snapshot creation time in **virtual** milliseconds, one entry per
    /// `col_counts` value.
    pub virtual_ms: Vec<f64>,
    /// Snapshot creation wall time in milliseconds (simulator structural
    /// work; secondary metric).
    pub wall_ms: Vec<f64>,
}

fn populate(s: &mut dyn Snapshotter) -> Result<()> {
    for col in 0..s.n_cols() {
        for page in 0..s.pages_per_col() {
            s.write_base(col, page, 0, page)?;
        }
    }
    Ok(())
}

fn measure_snapshots(
    s: &mut dyn Snapshotter,
    col_counts: &[usize],
) -> Result<(Vec<f64>, Vec<f64>)> {
    let mut virtual_ms = Vec::with_capacity(col_counts.len());
    let mut wall_ms = Vec::with_capacity(col_counts.len());
    for &p in col_counts {
        let v0 = s.kernel().virtual_ns();
        let w0 = Instant::now();
        let id = s.snapshot_columns(p)?;
        virtual_ms.push((s.kernel().virtual_ns() - v0) as f64 / 1e6);
        wall_ms.push(w0.elapsed().as_secs_f64() * 1e3);
        s.drop_snapshot(id)?;
    }
    Ok((virtual_ms, wall_ms))
}

/// Run the Table 1 experiment: snapshot creation cost for physical,
/// fork-based, and rewired snapshotting (the paper's state of the art).
pub fn table1_run(cfg: &Table1Config) -> Result<Vec<Table1Row>> {
    let mut rows = Vec::new();

    // Physical.
    {
        let mut s = PhysicalSnapshotter::new(cfg.n_cols, cfg.pages_per_col)?;
        populate(&mut s)?;
        let (virtual_ms, wall_ms) = measure_snapshots(&mut s, &cfg.col_counts)?;
        rows.push(Table1Row {
            method: "Physical",
            modified_per_col: None,
            vmas_per_col: s.base_vma_count(0),
            virtual_ms,
            wall_ms,
        });
    }

    // Fork-based.
    {
        let mut s = ForkSnapshotter::new(cfg.n_cols, cfg.pages_per_col)?;
        populate(&mut s)?;
        let (virtual_ms, wall_ms) = measure_snapshots(&mut s, &cfg.col_counts)?;
        rows.push(Table1Row {
            method: "Fork-based",
            modified_per_col: None,
            vmas_per_col: s.base_vma_count(0),
            virtual_ms,
            wall_ms,
        });
    }

    // Rewiring, one row per modified-page count.
    for &modified in &cfg.modified_pages {
        let mut s = RewiredSnapshotter::new(cfg.n_cols, cfg.pages_per_col)?;
        populate(&mut s)?;
        if modified > 0 {
            // Arm copy-on-write, then fragment every column by writing the
            // first 8 bytes of the first `modified` pages.
            let arm = s.snapshot_columns(cfg.n_cols)?;
            for col in 0..cfg.n_cols {
                for page in 0..modified.min(cfg.pages_per_col) {
                    s.write_base(col, page, 0, page + 1)?;
                }
            }
            s.drop_snapshot(arm)?;
        }
        let vmas = s.base_vma_count(0);
        let (virtual_ms, wall_ms) = measure_snapshots(&mut s, &cfg.col_counts)?;
        rows.push(Table1Row {
            method: "Rewiring",
            modified_per_col: Some(modified),
            vmas_per_col: vmas,
            virtual_ms,
            wall_ms,
        });
    }
    Ok(rows)
}

/// Configuration of the Figure 5 experiment (§4.1.4).
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Pages in the single column (paper: 51 200).
    pub pages: u64,
    /// Record a data point every this many writes (keeps output readable).
    pub record_every: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            pages: 2048,
            record_every: 64,
        }
    }
}

/// One recorded point of the Figure 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Total pages written so far.
    pub pages_written: u64,
    /// Figure 5a: snapshot creation time (virtual ns).
    pub rewiring_snapshot_ns: u64,
    pub vmsnap_snapshot_ns: u64,
    /// Figure 5b: cost of the 8-byte write preceding the snapshot
    /// (virtual ns).
    pub rewiring_write_ns: u64,
    pub vmsnap_write_ns: u64,
    /// VMAs backing the rewired column (right y-axis of both figures).
    pub rewiring_vmas: usize,
}

/// Run the Figure 5 experiment: for each page, write 8 bytes into it, then
/// take a fresh snapshot of the whole column (dropping the previous one);
/// report write cost, snapshot cost, and VMA growth for rewiring vs
/// `vm_snapshot`.
pub fn fig5_run(cfg: &Fig5Config) -> Result<Vec<Fig5Point>> {
    let mut rew = RewiredSnapshotter::new(1, cfg.pages)?;
    let mut vms = VmSnapshotter::new(1, cfg.pages)?;
    populate(&mut rew)?;
    populate(&mut vms)?;
    let mut rew_snap: Option<SnapshotId> = Some(rew.snapshot_columns(1)?);
    let mut vms_snap: Option<SnapshotId> = Some(vms.snapshot_columns(1)?);

    let mut points = Vec::new();
    for page in 0..cfg.pages {
        // -------- writes (Fig 5b) --------
        let t0 = rew.kernel().virtual_ns();
        rew.write_base(0, page, 0, page + 7)?;
        let rewiring_write_ns = rew.kernel().virtual_ns() - t0;

        let t0 = vms.kernel().virtual_ns();
        vms.write_base(0, page, 0, page + 7)?;
        let vmsnap_write_ns = vms.kernel().virtual_ns() - t0;

        // -------- snapshots (Fig 5a) --------
        let t0 = rew.kernel().virtual_ns();
        let new_rew = rew.snapshot_columns(1)?;
        let rewiring_snapshot_ns = rew.kernel().virtual_ns() - t0;
        if let Some(old) = rew_snap.replace(new_rew) {
            rew.drop_snapshot(old)?;
        }

        let t0 = vms.kernel().virtual_ns();
        let new_vms = vms.snapshot_columns(1)?;
        let vmsnap_snapshot_ns = vms.kernel().virtual_ns() - t0;
        if let Some(old) = vms_snap.replace(new_vms) {
            vms.drop_snapshot(old)?;
        }

        let written = page + 1;
        if written % cfg.record_every == 0 || written == cfg.pages {
            points.push(Fig5Point {
                pages_written: written,
                rewiring_snapshot_ns,
                vmsnap_snapshot_ns,
                rewiring_write_ns,
                vmsnap_write_ns,
                rewiring_vmas: rew.base_vma_count(0),
            });
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds_at_small_scale() {
        let cfg = Table1Config {
            n_cols: 8,
            pages_per_col: 64,
            col_counts: vec![1, 4, 8],
            modified_pages: vec![0, 16, 64],
        };
        let rows = table1_run(&cfg).unwrap();
        assert_eq!(rows.len(), 2 + 3);
        let by_name = |m: &str, modified: Option<u64>| {
            rows.iter()
                .find(|r| r.method == m && r.modified_per_col == modified)
                .unwrap()
        };
        let physical = by_name("Physical", None);
        let fork = by_name("Fork-based", None);
        let rew0 = by_name("Rewiring", Some(0));
        let rew_full = by_name("Rewiring", Some(64));

        // Physical scales with column count.
        assert!(physical.virtual_ms[2] > physical.virtual_ms[0] * 4.0);
        // Fork is independent of p.
        let f_ratio = fork.virtual_ms[2] / fork.virtual_ms[0];
        assert!((0.5..2.0).contains(&f_ratio), "fork ratio {f_ratio}");
        // Unfragmented rewiring beats physical and fork on a single column.
        assert!(rew0.virtual_ms[0] < physical.virtual_ms[0]);
        assert!(rew0.virtual_ms[0] < fork.virtual_ms[0]);
        // Fully fragmented rewiring is far worse than unfragmented.
        assert!(rew_full.virtual_ms[0] > rew0.virtual_ms[0] * 10.0);
        assert!(rew_full.vmas_per_col >= 64);
    }

    #[test]
    fn fig5_crossover_and_write_costs() {
        let cfg = Fig5Config {
            pages: 256,
            record_every: 16,
        };
        let points = fig5_run(&cfg).unwrap();
        assert_eq!(points.len(), 16);
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        // Rewiring snapshot cost grows with VMAs; vm_snapshot stays flat.
        assert!(last.rewiring_snapshot_ns > first.rewiring_snapshot_ns * 4);
        let vm_growth = last.vmsnap_snapshot_ns as f64 / first.vmsnap_snapshot_ns as f64;
        assert!(vm_growth < 2.0, "vm_snapshot should stay flat: {vm_growth}");
        // At the end, vm_snapshot wins clearly (paper: 68x at full scale).
        assert!(last.vmsnap_snapshot_ns * 4 < last.rewiring_snapshot_ns);
        // Fig 5b: manual COW write is several times the kernel COW write.
        assert!(last.rewiring_write_ns > last.vmsnap_write_ns * 3);
        // VMA count grows to ~1 VMA per written page once all are rewired.
        assert!(last.rewiring_vmas >= 256);
    }
}
