//! Rewired snapshotting — paper §3.2.3, §3.3.2(c); the user-space technique
//! of RUMA ("RUMA has it: rewired user-space memory access is possible!").
//!
//! Columns live in a main-memory file and are mapped shared. A snapshot maps
//! a fresh virtual area to the *same* file offsets, VMA by VMA, then the
//! base column is write-protected. The first write to a base page raises a
//! (simulated) SIGSEGV; the handler claims an unused page from the file
//! pool, copies the old content, and *rewires* the base page to the new file
//! offset with a `MAP_FIXED` mmap. Every such rewire fragments the base
//! column into more VMAs — which is exactly why snapshot creation cost grows
//! over time (Figure 5a) and why the paper replaces this scheme with
//! `vm_snapshot`.

use crate::{word_addr, SnapshotId, Snapshotter};
use anker_util::FxHashMap;
use anker_vmem::{Backing, Kernel, MapBacking, MemFile, Prot, Result, Share, Space, VmError};

/// How many pages to append to the file pool at a time.
const POOL_BATCH: u64 = 1024;

/// Rewired snapshotting with manual copy-on-write.
#[derive(Debug)]
pub struct RewiredSnapshotter {
    kernel: Kernel,
    space: Space,
    file: MemFile,
    cols: Vec<u64>,
    pages_per_col: u64,
    /// Next unused page in the file pool.
    next_pool_page: u64,
    /// Whether base columns are currently write-protected (a snapshot was
    /// taken since the last full-write pass).
    armed: Vec<bool>,
    snapshots: FxHashMap<usize, Vec<u64>>,
    next_id: usize,
}

impl RewiredSnapshotter {
    /// Build a table of `n_cols` columns, `pages_per_col` pages each.
    pub fn new(n_cols: usize, pages_per_col: u64) -> Result<RewiredSnapshotter> {
        Self::with_kernel(Kernel::default(), n_cols, pages_per_col)
    }

    /// Build the table on an existing kernel.
    pub fn with_kernel(
        kernel: Kernel,
        n_cols: usize,
        pages_per_col: u64,
    ) -> Result<RewiredSnapshotter> {
        let space = kernel.create_space();
        let ps = space.page_size();
        let table_pages = n_cols as u64 * pages_per_col;
        let file = kernel.create_file(table_pages + POOL_BATCH);
        let cols = (0..n_cols as u64)
            .map(|c| {
                space.mmap(
                    pages_per_col * ps,
                    Prot::READ_WRITE,
                    Share::Shared,
                    MapBacking::File(&file, c * pages_per_col * ps),
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(RewiredSnapshotter {
            kernel,
            space,
            file,
            cols,
            pages_per_col,
            next_pool_page: table_pages,
            armed: vec![false; n_cols],
            snapshots: FxHashMap::default(),
            next_id: 0,
        })
    }

    fn alloc_pool_page(&mut self) -> u64 {
        if self.next_pool_page + 1 >= self.file.n_pages() {
            self.file.grow(POOL_BATCH);
        }
        let p = self.next_pool_page;
        // Stride 2: a real pool hands out offsets in effectively arbitrary
        // (LIFO/recycled) order, so consecutively rewired pages land on
        // non-adjacent file offsets and their VMAs cannot merge — the paper
        // observes ~2 VMAs per written page (995 VMAs after 500 writes).
        // Contiguous pool offsets would let the kernel merge the rewired
        // mappings back together and hide exactly the fragmentation this
        // technique suffers from.
        self.next_pool_page += 2;
        p
    }

    /// The simulated SIGSEGV handler: manual copy-on-write of one base page
    /// (detect → claim pool page → copy → rewire).
    fn handle_cow(&mut self, col: usize, page: u64) -> Result<()> {
        self.kernel.charge_signal_delivery();
        let ps = self.space.page_size();
        let page_addr = self.cols[col] + page * ps;
        // Find the file offset currently backing this page.
        let vma = self
            .space
            .vmas_in(page_addr, ps)
            .into_iter()
            .next()
            .ok_or(VmError::NotMapped { addr: page_addr })?;
        let Backing::File { offset, .. } = vma.backing else {
            return Err(VmError::InvalidArgument("rewired column lost file backing"));
        };
        let old_fp = (offset + (page_addr - vma.start)) / ps;
        let new_fp = self.alloc_pool_page();
        self.file.copy_page(old_fp, new_fp)?;
        // Rewire: remap just this page, read-write, onto the fresh offset.
        self.space.mmap_at(
            page_addr,
            ps,
            Prot::READ_WRITE,
            Share::Shared,
            MapBacking::File(&self.file, new_fp * ps),
        )
    }
}

impl Snapshotter for RewiredSnapshotter {
    fn name(&self) -> &'static str {
        "rewiring"
    }

    fn n_cols(&self) -> usize {
        self.cols.len()
    }

    fn pages_per_col(&self) -> u64 {
        self.pages_per_col
    }

    fn snapshot_columns(&mut self, p: usize) -> Result<SnapshotId> {
        assert!(p <= self.cols.len());
        let ps = self.space.page_size();
        let col_bytes = self.pages_per_col * ps;
        let mut snap_cols = Vec::with_capacity(p);
        for col in 0..p {
            let base = self.cols[col];
            // Reserve a fresh virtual area S...
            let dst = self.space.mmap(
                col_bytes,
                Prot::READ,
                Share::Shared,
                MapBacking::File(&self.file, 0),
            )?;
            // ...and rewire the portion corresponding to each VMA backing
            // the base column to the same file offset (one mmap per VMA —
            // the cost the paper measures in Table 1).
            for vma in self.space.vmas_in(base, col_bytes) {
                let Backing::File { offset, .. } = vma.backing else {
                    return Err(VmError::InvalidArgument("rewired column lost file backing"));
                };
                self.space.mmap_at(
                    dst + (vma.start - base),
                    vma.len(),
                    Prot::READ,
                    Share::Shared,
                    MapBacking::File(&self.file, offset),
                )?;
            }
            // Write-protect the base column so the next write to each page
            // faults and triggers the manual copy-on-write. (The paper's
            // §3.3.2 text protects S instead; the two are symmetric — one
            // side must stay frozen, the other pays the manual COW. We keep
            // updates flowing to the base, matching §3.2.3's narrative.)
            self.space.mprotect(base, col_bytes, Prot::READ)?;
            self.armed[col] = true;
            snap_cols.push(dst);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.snapshots.insert(id, snap_cols);
        Ok(SnapshotId(id))
    }

    fn drop_snapshot(&mut self, id: SnapshotId) -> Result<()> {
        let cols = self
            .snapshots
            .remove(&id.0)
            .ok_or(VmError::InvalidArgument("unknown snapshot id"))?;
        let bytes = self.pages_per_col * self.space.page_size();
        for addr in cols {
            self.space.munmap(addr, bytes)?;
        }
        // Note: the file pages the snapshot referenced are not returned to
        // the pool; reclaiming them would require per-page reference counts
        // in user space. The paper's prototype shares this simplification —
        // the pool only ever grows.
        Ok(())
    }

    fn write_base(&mut self, col: usize, page: u64, word: u64, value: u64) -> Result<()> {
        let addr = word_addr(self.cols[col], self.space.page_size(), page, word);
        match self.space.write_u64(addr, value) {
            Ok(()) => Ok(()),
            Err(VmError::ProtectionFault { .. }) => {
                // Simulated SIGSEGV: run the manual COW handler, then retry.
                self.handle_cow(col, page)?;
                self.space.write_u64(addr, value)
            }
            Err(e) => Err(e),
        }
    }

    fn read_base(&self, col: usize, page: u64, word: u64) -> Result<u64> {
        self.space.read_u64(word_addr(
            self.cols[col],
            self.space.page_size(),
            page,
            word,
        ))
    }

    fn read_snapshot(&self, id: SnapshotId, col: usize, page: u64, word: u64) -> Result<u64> {
        let cols = &self.snapshots[&id.0];
        self.space
            .read_u64(word_addr(cols[col], self.space.page_size(), page, word))
    }

    fn base_vma_count(&self, col: usize) -> usize {
        self.space
            .vma_count_in(self.cols[col], self.pages_per_col * self.space.page_size())
    }

    fn kernel(&self) -> &Kernel {
        &self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Snapshotter;

    #[test]
    fn writes_fragment_the_base_column() {
        let mut s = RewiredSnapshotter::new(1, 16).unwrap();
        for p in 0..16 {
            s.write_base(0, p, 0, p).unwrap();
        }
        assert_eq!(s.base_vma_count(0), 1);
        let id = s.snapshot_columns(1).unwrap();
        // Each first write to a page adds a rewired single-page VMA.
        s.write_base(0, 3, 0, 100).unwrap();
        s.write_base(0, 8, 0, 200).unwrap();
        assert_eq!(s.base_vma_count(0), 5, "2 rewired pages → 5 VMAs");
        // Second write to the same page does not fault again.
        let faults = s.kernel().stats().protection_faults;
        s.write_base(0, 3, 0, 101).unwrap();
        assert_eq!(s.kernel().stats().protection_faults, faults);
        // Snapshot frozen.
        assert_eq!(s.read_snapshot(id, 0, 3, 0).unwrap(), 3);
        assert_eq!(s.read_snapshot(id, 0, 8, 0).unwrap(), 8);
        assert_eq!(s.read_base(0, 3, 0).unwrap(), 101);
    }

    #[test]
    fn snapshot_cost_grows_with_vma_count() {
        let mut s = RewiredSnapshotter::new(1, 64).unwrap();
        s.snapshot_columns(1).unwrap();
        let t0 = s.kernel().virtual_ns();
        s.snapshot_columns(1).unwrap();
        let cheap = s.kernel().virtual_ns() - t0;
        // Fragment heavily.
        for p in 0..64 {
            s.write_base(0, p, 0, 1).unwrap();
        }
        assert!(s.base_vma_count(0) >= 64);
        let t0 = s.kernel().virtual_ns();
        s.snapshot_columns(1).unwrap();
        let costly = s.kernel().virtual_ns() - t0;
        assert!(
            costly > cheap * 10,
            "fragmented snapshot ({costly} ns) should dwarf contiguous one ({cheap} ns)"
        );
    }

    #[test]
    fn fig5b_write_costs_manual_cow() {
        // A write into an armed page pays signal delivery + copy + rewire.
        let mut s = RewiredSnapshotter::new(1, 4).unwrap();
        s.snapshot_columns(1).unwrap();
        let t0 = s.kernel().virtual_ns();
        s.write_base(0, 1, 0, 5).unwrap();
        let armed_write = s.kernel().virtual_ns() - t0;
        let t0 = s.kernel().virtual_ns();
        s.write_base(0, 1, 1, 6).unwrap();
        let plain_write = s.kernel().virtual_ns() - t0;
        assert!(
            armed_write > 10 * plain_write.max(1),
            "manual COW ({armed_write} ns) should dwarf a plain write ({plain_write} ns)"
        );
        assert!(armed_write >= s.kernel().cost_model().signal_delivery as u64);
    }

    #[test]
    fn multi_column_isolation() {
        let mut s = RewiredSnapshotter::new(3, 4).unwrap();
        for c in 0..3 {
            s.write_base(c, 0, 0, c as u64 + 1).unwrap();
        }
        // Snapshot only the first two columns.
        let id = s.snapshot_columns(2).unwrap();
        // Column 2 was not snapshotted: writes to it must not fault.
        let faults = s.kernel().stats().protection_faults;
        s.write_base(2, 0, 0, 33).unwrap();
        assert_eq!(s.kernel().stats().protection_faults, faults);
        s.write_base(0, 0, 0, 11).unwrap();
        assert_eq!(s.read_snapshot(id, 0, 0, 0).unwrap(), 1);
        assert_eq!(s.read_snapshot(id, 1, 0, 0).unwrap(), 2);
    }
}
