//! Fork-based snapshotting — paper §3.2.2, §3.3.2(b); the mechanism of the
//! early heterogeneous HyPer.
//!
//! "To create a snapshot of p columns of table T, we create a copy of the
//! process containing table T using the system call fork. Independent of p,
//! this snapshots the entire table."

use crate::{word_addr, SnapshotId, Snapshotter};
use anker_util::FxHashMap;
use anker_vmem::{Kernel, MapBacking, Prot, Result, Share, Space};

/// `fork`-based snapshotting: each snapshot is a child address space sharing
/// all pages copy-on-write with the parent.
#[derive(Debug)]
pub struct ForkSnapshotter {
    kernel: Kernel,
    parent: Space,
    cols: Vec<u64>,
    pages_per_col: u64,
    /// Snapshot id → child address space.
    children: FxHashMap<usize, Space>,
    next_id: usize,
}

impl ForkSnapshotter {
    /// Build a table of `n_cols` columns, `pages_per_col` pages each.
    pub fn new(n_cols: usize, pages_per_col: u64) -> Result<ForkSnapshotter> {
        Self::with_kernel(Kernel::default(), n_cols, pages_per_col)
    }

    /// Build the table on an existing kernel.
    pub fn with_kernel(
        kernel: Kernel,
        n_cols: usize,
        pages_per_col: u64,
    ) -> Result<ForkSnapshotter> {
        let parent = kernel.create_space();
        let ps = parent.page_size();
        let cols = (0..n_cols)
            .map(|_| {
                parent.mmap(
                    pages_per_col * ps,
                    Prot::READ_WRITE,
                    Share::Private,
                    MapBacking::Anon,
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ForkSnapshotter {
            kernel,
            parent,
            cols,
            pages_per_col,
            children: FxHashMap::default(),
            next_id: 0,
        })
    }

    /// The parent ("database") address space.
    pub fn parent(&self) -> &Space {
        &self.parent
    }
}

impl Snapshotter for ForkSnapshotter {
    fn name(&self) -> &'static str {
        "fork-based"
    }

    fn n_cols(&self) -> usize {
        self.cols.len()
    }

    fn pages_per_col(&self) -> u64 {
        self.pages_per_col
    }

    fn snapshot_columns(&mut self, _p: usize) -> Result<SnapshotId> {
        // fork always duplicates the entire process, whatever p is.
        let child = self.parent.fork()?;
        let id = self.next_id;
        self.next_id += 1;
        self.children.insert(id, child);
        Ok(SnapshotId(id))
    }

    fn drop_snapshot(&mut self, id: SnapshotId) -> Result<()> {
        self.children
            .remove(&id.0)
            .map(|_| ())
            .ok_or(anker_vmem::VmError::InvalidArgument("unknown snapshot id"))
    }

    fn write_base(&mut self, col: usize, page: u64, word: u64, value: u64) -> Result<()> {
        // The kernel handles copy-on-write transparently.
        self.parent.write_u64(
            word_addr(self.cols[col], self.parent.page_size(), page, word),
            value,
        )
    }

    fn read_base(&self, col: usize, page: u64, word: u64) -> Result<u64> {
        self.parent.read_u64(word_addr(
            self.cols[col],
            self.parent.page_size(),
            page,
            word,
        ))
    }

    fn read_snapshot(&self, id: SnapshotId, col: usize, page: u64, word: u64) -> Result<u64> {
        let child = &self.children[&id.0];
        // Same virtual addresses in the child, like a real fork.
        child.read_u64(word_addr(self.cols[col], child.page_size(), page, word))
    }

    fn base_vma_count(&self, col: usize) -> usize {
        self.parent
            .vma_count_in(self.cols[col], self.pages_per_col * self.parent.page_size())
    }

    fn kernel(&self) -> &Kernel {
        &self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Snapshotter;

    #[test]
    fn fork_cost_independent_of_p() {
        let mut s = ForkSnapshotter::new(8, 16).unwrap();
        // Touch all pages so the page tables are fully populated.
        for c in 0..8 {
            for p in 0..16 {
                s.write_base(c, p, 0, 1).unwrap();
            }
        }
        let t0 = s.kernel().virtual_ns();
        s.snapshot_columns(1).unwrap();
        let c1 = s.kernel().virtual_ns() - t0;
        let t0 = s.kernel().virtual_ns();
        s.snapshot_columns(8).unwrap();
        let c8 = s.kernel().virtual_ns() - t0;
        let ratio = c8 as f64 / c1 as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "fork cost must not depend on p (got ratio {ratio:.2})"
        );
    }

    #[test]
    fn snapshot_lazy_no_physical_copy() {
        let mut s = ForkSnapshotter::new(2, 32).unwrap();
        for c in 0..2 {
            for p in 0..32 {
                s.write_base(c, p, 0, 7).unwrap();
            }
        }
        let before = s.kernel().frames_in_use();
        let id = s.snapshot_columns(2).unwrap();
        assert_eq!(s.kernel().frames_in_use(), before, "fork must be lazy");
        // One write → exactly one page physically separated.
        s.write_base(0, 0, 0, 8).unwrap();
        assert_eq!(s.kernel().frames_in_use(), before + 1);
        assert_eq!(s.read_snapshot(id, 0, 0, 0).unwrap(), 7);
    }

    #[test]
    fn dropping_child_releases_cow_frames() {
        let mut s = ForkSnapshotter::new(1, 8).unwrap();
        for p in 0..8 {
            s.write_base(0, p, 0, 1).unwrap();
        }
        let id = s.snapshot_columns(1).unwrap();
        for p in 0..8 {
            s.write_base(0, p, 0, 2).unwrap();
        }
        let inflated = s.kernel().frames_in_use();
        assert_eq!(inflated, 16);
        s.drop_snapshot(id).unwrap();
        assert_eq!(s.kernel().frames_in_use(), 8);
    }
}
