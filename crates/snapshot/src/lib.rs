//! # anker-snapshot — the paper's snapshotting techniques, side by side
//!
//! Implements every snapshot-creation mechanism discussed in the paper over
//! the simulated VM subsystem of [`anker_vmem`]:
//!
//! * [`physical::PhysicalSnapshotter`] — eager deep copies (§3.1).
//! * [`fork_based::ForkSnapshotter`] — `fork` + OS copy-on-write, the
//!   mechanism of early HyPer (§3.2.2).
//! * [`rewired::RewiredSnapshotter`] — user-space rewiring over main-memory
//!   files with manual copy-on-write via write protection and a simulated
//!   SIGSEGV handler (§3.2.3, RUMA).
//! * [`vmsnap::VmSnapshotter`] — the paper's custom `vm_snapshot` system
//!   call (§4), including the destination-recycling variant (§4.1.3).
//!
//! All four implement the [`Snapshotter`] trait against the same logical
//! workload — a table of `n_cols` columns of `pages_per_col` pages — so the
//! micro-benchmarks of Table 1 and Figure 5 can drive them uniformly.
//!
//! ## Example
//!
//! ```
//! use anker_snapshot::{Snapshotter, VmSnapshotter};
//!
//! // A 2-column table of 4 pages per column, snapshotted with the paper's
//! // vm_snapshot system call.
//! let mut s = VmSnapshotter::new(2, 4).unwrap();
//! s.write_base(0, 1, 0, 42).unwrap();
//! let snap = s.snapshot_columns(2).unwrap();
//!
//! // The snapshot stays frozen while the base keeps mutating.
//! s.write_base(0, 1, 0, 7).unwrap();
//! assert_eq!(s.read_base(0, 1, 0).unwrap(), 7);
//! assert_eq!(s.read_snapshot(snap, 0, 1, 0).unwrap(), 42);
//! s.drop_snapshot(snap).unwrap();
//! ```
// No unsafe in this crate: verified by the compiler, inventoried by
// `anker-lint -- audit` (results/unsafe_audit.json records zero sites).
#![forbid(unsafe_code)]

pub mod experiments;
pub mod fork_based;
pub mod physical;
pub mod rewired;
pub mod vmsnap;

use anker_vmem::{Kernel, Result};

pub use experiments::{fig5_run, table1_run, Fig5Config, Fig5Point, Table1Config, Table1Row};
pub use fork_based::ForkSnapshotter;
pub use physical::PhysicalSnapshotter;
pub use rewired::RewiredSnapshotter;
pub use vmsnap::VmSnapshotter;

/// Identifier of a snapshot created by a [`Snapshotter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnapshotId(pub usize);

/// A snapshotting technique operating on a fixed table of columns.
///
/// The base table is the *most recent* representation that keeps receiving
/// writes; snapshots must stay frozen at their creation point. Writes go
/// through [`Snapshotter::write_base`] so each technique can apply its own
/// copy-on-write handling (the kernel's for `fork`/`vm_snapshot`, a manual
/// user-space handler for rewiring).
pub trait Snapshotter {
    /// Human-readable technique name, as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Number of columns in the base table.
    fn n_cols(&self) -> usize;

    /// Pages per column.
    fn pages_per_col(&self) -> u64;

    /// Create a snapshot of the first `p` columns. (Fork-based snapshotting
    /// inherently snapshots the whole table regardless of `p`, exactly as
    /// the paper notes.)
    fn snapshot_columns(&mut self, p: usize) -> Result<SnapshotId>;

    /// Drop a snapshot, releasing whatever it pinned.
    fn drop_snapshot(&mut self, id: SnapshotId) -> Result<()>;

    /// Write an 8-byte word into the base table, performing whatever
    /// copy-on-write handling the technique requires.
    fn write_base(&mut self, col: usize, page: u64, word: u64, value: u64) -> Result<()>;

    /// Read an 8-byte word from the base table.
    fn read_base(&self, col: usize, page: u64, word: u64) -> Result<u64>;

    /// Read an 8-byte word from a snapshot.
    fn read_snapshot(&self, id: SnapshotId, col: usize, page: u64, word: u64) -> Result<u64>;

    /// Number of VMAs currently backing base column `col` — the quantity
    /// that drives rewiring's snapshot-creation cost (Figure 5a).
    fn base_vma_count(&self, col: usize) -> usize;

    /// The kernel this technique runs on (for stats and the virtual clock).
    fn kernel(&self) -> &Kernel;
}

/// Byte offset of `(page, word)` within a column of page size `ps`.
#[inline]
pub(crate) fn word_addr(base: u64, ps: u64, page: u64, word: u64) -> u64 {
    base + page * ps + word * 8
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    /// Exercise the shared contract of all four techniques: snapshots are
    /// frozen, the base keeps mutating, drops release resources.
    fn exercise(mut s: Box<dyn Snapshotter>) {
        let name = s.name();
        // Initialise two columns with recognisable data.
        for col in 0..2 {
            for page in 0..s.pages_per_col() {
                s.write_base(col, page, 0, 1000 * col as u64 + page)
                    .unwrap();
            }
        }
        let snap = s.snapshot_columns(2).unwrap();
        // Overwrite the base.
        s.write_base(0, 3, 0, 4242).unwrap();
        s.write_base(1, 0, 0, 2424).unwrap();
        assert_eq!(
            s.read_base(0, 3, 0).unwrap(),
            4242,
            "{name}: base write lost"
        );
        assert_eq!(
            s.read_snapshot(snap, 0, 3, 0).unwrap(),
            3,
            "{name}: snapshot not frozen"
        );
        assert_eq!(
            s.read_snapshot(snap, 1, 0, 0).unwrap(),
            1000,
            "{name}: snapshot not frozen (col 1)"
        );
        // A second snapshot sees the new state.
        let snap2 = s.snapshot_columns(2).unwrap();
        assert_eq!(s.read_snapshot(snap2, 0, 3, 0).unwrap(), 4242);
        // Dropping in any order is fine.
        s.drop_snapshot(snap).unwrap();
        assert_eq!(s.read_snapshot(snap2, 1, 0, 0).unwrap(), 2424);
        s.drop_snapshot(snap2).unwrap();
        // Base still fully functional afterwards.
        s.write_base(0, 0, 0, 7).unwrap();
        assert_eq!(s.read_base(0, 0, 0).unwrap(), 7);
    }

    #[test]
    fn physical_contract() {
        exercise(Box::new(PhysicalSnapshotter::new(2, 8).unwrap()));
    }

    #[test]
    fn fork_contract() {
        exercise(Box::new(ForkSnapshotter::new(2, 8).unwrap()));
    }

    #[test]
    fn rewired_contract() {
        exercise(Box::new(RewiredSnapshotter::new(2, 8).unwrap()));
    }

    #[test]
    fn vmsnap_contract() {
        exercise(Box::new(VmSnapshotter::new(2, 8).unwrap()));
    }
}
