//! # AnKerDB
//!
//! Facade crate re-exporting the public API of the AnKerDB workspace — a
//! reproduction of *"Accelerating Analytical Processing in MVCC using
//! Fine-Granular High-Frequency Virtual Snapshotting"* (SIGMOD 2018).
//!
//! See the `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results of every table and figure.

pub use anker_core as core;
pub use anker_mvcc as mvcc;
pub use anker_snapshot as snapshot;
pub use anker_storage as storage;
pub use anker_tpch as tpch;
pub use anker_util as util;
pub use anker_vmem as vmem;
