//! # AnKerDB
//!
//! Facade crate re-exporting the public API of the AnKerDB workspace — a
//! reproduction of *"Accelerating Analytical Processing in MVCC using
//! Fine-Granular High-Frequency Virtual Snapshotting"* (SIGMOD 2018).
//!
//! See the `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results of every table and figure.
//!
//! ## Example
//!
//! ```
//! use ankerdb::vmem::{Kernel, MapBacking, Prot, Share};
//!
//! // The paper's mechanism in three lines: map a column, snapshot it
//! // virtually, and let copy-on-write keep the snapshot frozen.
//! let kernel = Kernel::default();
//! let space = kernel.create_space();
//! let ps = space.page_size();
//! let col = space.mmap(4 * ps, Prot::READ_WRITE, Share::Private, MapBacking::Anon).unwrap();
//! space.write_u64(col, 1).unwrap();
//! let snap = space.vm_snapshot(None, col, 4 * ps).unwrap();
//! space.write_u64(col, 2).unwrap();
//! assert_eq!(space.read_u64(snap).unwrap(), 1);
//! assert_eq!(space.read_u64(col).unwrap(), 2);
//! ```

pub use anker_core as core;
pub use anker_dura as dura;
pub use anker_mvcc as mvcc;
pub use anker_snapshot as snapshot;
pub use anker_storage as storage;
pub use anker_tpch as tpch;
pub use anker_util as util;
pub use anker_vmem as vmem;
pub use obs;
